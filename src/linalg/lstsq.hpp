// Least-squares solvers: ordinary, weighted, and iteratively reweighted.
//
// These implement Eq. (13)-(16) of the paper:
//   X* = (A^T A)^{-1} A^T K                 (ordinary LS)
//   X* = (A^T W A)^{-1} A^T W K             (weighted LS)
// with Gaussian residual weights w_i = exp(-(r_i - mu)^2 / (2 sigma^2))
// refreshed each iteration until the estimate stabilizes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace lion::linalg {

/// Result of a least-squares solve.
struct LstsqResult {
  std::vector<double> x;          ///< optimal solution
  std::vector<double> residuals;  ///< per-row residual r_i = A_i x - k_i
  std::vector<double> weights;    ///< final per-row weights (all 1 for OLS)
  double mean_residual = 0.0;     ///< average of residuals
  double rms_residual = 0.0;      ///< root-mean-square residual
  std::size_t iterations = 0;     ///< reweighting iterations performed
  bool converged = true;          ///< false if iteration cap was hit
};

/// Ordinary least squares via the normal equations (Cholesky fast path, QR
/// fallback for ill-conditioned systems). Throws std::domain_error when the
/// system is rank deficient.
LstsqResult solve_least_squares(const Matrix& a, const std::vector<double>& b);

/// Weighted least squares with fixed per-row weights.
LstsqResult solve_weighted_least_squares(const Matrix& a,
                                         const std::vector<double>& b,
                                         const std::vector<double>& weights);

/// Robust loss selecting how residuals map to IRLS weights.
enum class RobustLoss {
  kGaussian,  ///< the paper's Eq. (15): w = exp(-z^2/2); soft down-weighting
  kHuber,     ///< w = 1 inside the tuning band, c/|z| outside; never zero
  kTukey,     ///< biweight: w = (1 - (z/c)^2)^2 inside, 0 outside; rejects
};

const char* robust_loss_name(RobustLoss loss);

/// Options for iteratively-reweighted least squares.
struct IrlsOptions {
  std::size_t max_iterations = 20;  ///< cap on reweighting rounds
  double tolerance = 1e-9;          ///< stop when ||x_k - x_{k-1}||_inf < tol
  double min_sigma = 1e-12;         ///< residual-spread floor (all-equal case)
  RobustLoss loss = RobustLoss::kGaussian;  ///< weight function
  /// Tuning constant c of the loss in robust-sigma units; 0 picks the
  /// textbook 95%-efficiency default (Huber 1.345, Tukey 4.685).
  double tuning = 0.0;
};

/// Iteratively-reweighted least squares with the paper's Gaussian weight
/// function (Eq. 15): start from OLS, compute residuals, set
/// w_i = exp(-(r_i - mu)^2 / (2 sigma^2)), re-solve, repeat to convergence.
LstsqResult solve_irls(const Matrix& a, const std::vector<double>& b,
                       const IrlsOptions& options = {});

/// The paper's Eq. (15) weight vector for a given residual vector.
std::vector<double> gaussian_residual_weights(
    const std::vector<double>& residuals, double min_sigma = 1e-12);

/// Robust weight vector for a residual vector. Residuals are centred on
/// their median and scaled by the MAD-based robust sigma (1.4826 * MAD,
/// floored at min_sigma) so a minority of arbitrarily large outliers
/// cannot inflate the scale the way they inflate a standard deviation.
/// If a hard-rejecting loss (Tukey) zeroes every row, the Huber weights
/// are returned instead so the solve stays feasible.
std::vector<double> robust_residual_weights(
    const std::vector<double>& residuals, RobustLoss loss,
    double tuning = 0.0, double min_sigma = 1e-12);

}  // namespace lion::linalg
