// Least-squares solvers: ordinary, weighted, and iteratively reweighted.
//
// These implement Eq. (13)-(16) of the paper:
//   X* = (A^T A)^{-1} A^T K                 (ordinary LS)
//   X* = (A^T W A)^{-1} A^T W K             (weighted LS)
// with Gaussian residual weights w_i = exp(-(r_i - mu)^2 / (2 sigma^2))
// refreshed each iteration until the estimate stabilizes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace lion::linalg {

/// Result of a least-squares solve.
struct LstsqResult {
  std::vector<double> x;          ///< optimal solution
  std::vector<double> residuals;  ///< per-row residual r_i = A_i x - k_i
  std::vector<double> weights;    ///< final per-row weights (all 1 for OLS)
  double mean_residual = 0.0;     ///< average of residuals
  double rms_residual = 0.0;      ///< root-mean-square residual
  std::size_t iterations = 0;     ///< reweighting iterations performed
  bool converged = true;          ///< false if iteration cap was hit
};

/// Non-throwing solver outcome for the hot-path entry points. The classic
/// solvers signal these by throwing std::domain_error; inside the RANSAC
/// sampling loop a degenerate subset is an *expected* event, so the
/// status-returning variants make it a counted branch instead.
enum class SolveStatus {
  kOk,               ///< solution written
  kUnderdetermined,  ///< fewer (selected) rows than unknowns
  kRankDeficient,    ///< Cholesky failed and QR found |R_ii| < kSingularTol
};

/// Stable short name ("ok", "underdetermined", "rank_deficient").
const char* solve_status_name(SolveStatus status);

/// Scratch + row-product cache for the zero-allocation small-system path;
/// defined in linalg/small.hpp.
class SolverWorkspace;

/// Ordinary least squares via the normal equations (Cholesky fast path, QR
/// fallback for ill-conditioned systems). Throws std::domain_error when the
/// system is rank deficient.
LstsqResult solve_least_squares(const Matrix& a, const std::vector<double>& b);

/// Solution-only ordinary least squares: identical x to
/// solve_least_squares (same solve, same throws) without the residual /
/// mean / rms diagnostics — for callers like the RANSAC sampling loop
/// that discard everything but x.
std::vector<double> solve_least_squares_solution(const Matrix& a,
                                                 const std::vector<double>& b);

/// Non-throwing solution-only least squares. Writes x and returns kOk, or
/// returns a failure status exactly when solve_least_squares would throw
/// std::domain_error (kUnderdetermined for rows < cols, kRankDeficient
/// when both Cholesky and QR reject the system). Still throws
/// std::invalid_argument on a rhs size mismatch — that is a caller bug,
/// not a data property.
SolveStatus try_solve_least_squares(const Matrix& a,
                                    const std::vector<double>& b,
                                    std::vector<double>& x);

/// Weighted least squares with fixed per-row weights.
LstsqResult solve_weighted_least_squares(const Matrix& a,
                                         const std::vector<double>& b,
                                         const std::vector<double>& weights);

/// Robust loss selecting how residuals map to IRLS weights.
enum class RobustLoss {
  kGaussian,  ///< the paper's Eq. (15): w = exp(-z^2/2); soft down-weighting
  kHuber,     ///< w = 1 inside the tuning band, c/|z| outside; never zero
  kTukey,     ///< biweight: w = (1 - (z/c)^2)^2 inside, 0 outside; rejects
};

const char* robust_loss_name(RobustLoss loss);

/// Options for iteratively-reweighted least squares.
struct IrlsOptions {
  std::size_t max_iterations = 20;  ///< cap on reweighting rounds
  double tolerance = 1e-9;          ///< stop when ||x_k - x_{k-1}||_inf < tol
  double min_sigma = 1e-12;         ///< residual-spread floor (all-equal case)
  RobustLoss loss = RobustLoss::kGaussian;  ///< weight function
  /// Tuning constant c of the loss in robust-sigma units; 0 picks the
  /// textbook 95%-efficiency default (Huber 1.345, Tukey 4.685).
  double tuning = 0.0;
};

/// Iteratively-reweighted least squares with the paper's Gaussian weight
/// function (Eq. 15): start from OLS, compute residuals, set
/// w_i = exp(-(r_i - mu)^2 / (2 sigma^2)), re-solve, repeat to convergence.
LstsqResult solve_irls(const Matrix& a, const std::vector<double>& b,
                       const IrlsOptions& options = {});

/// IRLS through a SolverWorkspace: bit-identical results to the overload
/// above (same operations in the same order), but for systems with
/// cols <= kSmallMaxCols all per-iteration storage comes from the
/// workspace, so a warmed workspace makes repeated solves allocation-free
/// outside the returned result. Wider systems fall through to the classic
/// path. Note: (re)loads `ws` with this system.
LstsqResult solve_irls(const Matrix& a, const std::vector<double>& b,
                       const IrlsOptions& options, SolverWorkspace& ws);

/// Same, writing into a caller-owned result (reuse `out` across calls to
/// avoid the result-vector allocations too).
void solve_irls(const Matrix& a, const std::vector<double>& b,
                const IrlsOptions& options, SolverWorkspace& ws,
                LstsqResult& out);

/// Non-throwing IRLS over the rows of the system *already loaded* into
/// `ws` that `mask` selects (mask == nullptr selects all rows; `count`
/// must equal the number of selected rows). Equivalent to solve_irls on
/// the materialized row-subset system — bit-identical x / residuals /
/// weights / diagnostics — but allocation-free once `ws` and `out` are
/// warm, and returning a status where the classic path would throw
/// std::domain_error. On a non-kOk status `out` is unspecified.
SolveStatus solve_irls_masked(SolverWorkspace& ws, const char* mask,
                              std::size_t count, const IrlsOptions& options,
                              LstsqResult& out);

/// The paper's Eq. (15) weight vector for a given residual vector.
std::vector<double> gaussian_residual_weights(
    const std::vector<double>& residuals, double min_sigma = 1e-12);

/// Minimum *mean* robust weight (weight mass / rows) below which a
/// hard-rejecting loss is considered to have zeroed the system and the
/// Huber weights are used instead. Dimensionless, unlike the residual
/// scale floor min_sigma.
inline constexpr double kMinMeanRobustWeight = 1e-12;

/// Robust weight vector for a residual vector. Residuals are centred on
/// their median and scaled by the MAD-based robust sigma (1.4826 * MAD,
/// floored at min_sigma) so a minority of arbitrarily large outliers
/// cannot inflate the scale the way they inflate a standard deviation.
/// If a hard-rejecting loss (Tukey) zeroes every row (mean weight below
/// kMinMeanRobustWeight), the Huber weights are returned instead so the
/// solve stays feasible.
std::vector<double> robust_residual_weights(
    const std::vector<double>& residuals, RobustLoss loss,
    double tuning = 0.0, double min_sigma = 1e-12);

}  // namespace lion::linalg
