#include "linalg/lstsq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "linalg/decompositions.hpp"
#include "linalg/small.hpp"
#include "linalg/stats.hpp"
#include "obs/obs.hpp"

namespace lion::linalg {

namespace {

// Fill residual/summary fields of a result whose x is already set.
void finalize(const Matrix& a, const std::vector<double>& b,
              LstsqResult& out) {
  out.residuals = a.multiply(out.x);
  for (std::size_t i = 0; i < b.size(); ++i) out.residuals[i] -= b[i];
  out.mean_residual = mean(out.residuals);
  double ss = 0.0;
  for (double r : out.residuals) ss += r * r;
  out.rms_residual =
      out.residuals.empty()
          ? 0.0
          : std::sqrt(ss / static_cast<double>(out.residuals.size()));
}

std::vector<double> solve_normal_or_qr(const Matrix& a,
                                       const std::vector<double>& b,
                                       const std::vector<double>* weights) {
  if (a.rows() < a.cols()) {
    throw std::domain_error("least squares: underdetermined system");
  }
  const Matrix gram = weights ? a.weighted_gram(*weights) : a.gram();
  const std::vector<double> rhs =
      weights ? a.weighted_transpose_multiply(*weights, b)
              : a.transpose_multiply(b);
  if (const auto chol = Cholesky::factor(gram)) return chol->solve(rhs);
  // Normal equations failed (rank-deficient or badly conditioned): fall back
  // to QR on the (row-scaled, for WLS) design matrix.
  Matrix design = a;
  std::vector<double> target = b;
  if (weights) {
    for (std::size_t r = 0; r < design.rows(); ++r) {
      const double s = std::sqrt(std::max(0.0, (*weights)[r]));
      for (std::size_t c = 0; c < design.cols(); ++c) design(r, c) *= s;
      target[r] *= s;
    }
  }
  return HouseholderQR(std::move(design)).solve(target);
}

}  // namespace

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kUnderdetermined:
      return "underdetermined";
    case SolveStatus::kRankDeficient:
      return "rank_deficient";
  }
  return "unknown";
}

LstsqResult solve_least_squares(const Matrix& a,
                                const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  }
  LstsqResult out;
  out.x = solve_normal_or_qr(a, b, nullptr);
  out.weights.assign(a.rows(), 1.0);
  finalize(a, b, out);
  return out;
}

std::vector<double> solve_least_squares_solution(const Matrix& a,
                                                 const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  }
  return solve_normal_or_qr(a, b, nullptr);
}

SolveStatus try_solve_least_squares(const Matrix& a,
                                    const std::vector<double>& b,
                                    std::vector<double>& x) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  }
  if (a.rows() < a.cols()) return SolveStatus::kUnderdetermined;
  const Matrix gram = a.gram();
  const std::vector<double> rhs = a.transpose_multiply(b);
  if (const auto chol = Cholesky::factor(gram)) {
    x = chol->solve(rhs);
    return SolveStatus::kOk;
  }
  // Same QR fallback as solve_normal_or_qr, but the rank-deficiency it
  // would signal by throwing is detected from the R diagonal up front
  // (|R_ii| < kSingularTol is exactly HouseholderQR::solve's throw
  // condition, so the two paths accept the same systems).
  HouseholderQR qr(a);
  for (const double d : qr.r_diagonal()) {
    if (d < kSingularTol) return SolveStatus::kRankDeficient;
  }
  x = qr.solve(b);
  return SolveStatus::kOk;
}

LstsqResult solve_weighted_least_squares(const Matrix& a,
                                         const std::vector<double>& b,
                                         const std::vector<double>& weights) {
  if (b.size() != a.rows() || weights.size() != a.rows()) {
    throw std::invalid_argument(
        "solve_weighted_least_squares: size mismatch");
  }
  LstsqResult out;
  out.x = solve_normal_or_qr(a, b, &weights);
  out.weights = weights;
  finalize(a, b, out);
  return out;
}

const char* robust_loss_name(RobustLoss loss) {
  switch (loss) {
    case RobustLoss::kGaussian:
      return "gaussian";
    case RobustLoss::kHuber:
      return "huber";
    case RobustLoss::kTukey:
      return "tukey";
  }
  return "unknown";
}

std::vector<double> robust_residual_weights(
    const std::vector<double>& residuals, RobustLoss loss, double tuning,
    double min_sigma) {
  if (loss == RobustLoss::kGaussian) {
    return gaussian_residual_weights(residuals, min_sigma);
  }
  if (residuals.empty()) return {};
  const double med = median(residuals);
  std::vector<double> abs_dev(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    abs_dev[i] = std::abs(residuals[i] - med);
  }
  const double sigma = std::max(1.4826 * median(abs_dev), min_sigma);

  const double c = tuning > 0.0
                       ? tuning
                       : (loss == RobustLoss::kHuber ? 1.345 : 4.685);
  auto weights_for = [&](RobustLoss l) {
    std::vector<double> w(residuals.size());
    for (std::size_t i = 0; i < residuals.size(); ++i) {
      const double z = std::abs(residuals[i] - med) / sigma;
      if (l == RobustLoss::kHuber) {
        w[i] = z <= c ? 1.0 : c / z;
      } else {  // Tukey biweight
        const double u = z / c;
        w[i] = u < 1.0 ? (1.0 - u * u) * (1.0 - u * u) : 0.0;
      }
    }
    return w;
  };

  auto w = weights_for(loss);
  double total = 0.0;
  for (double wi : w) total += wi;
  // Feasibility gate: if the loss rejected essentially every row, retry
  // with Huber (never zero). The threshold is on the *mean* weight — a
  // dimensionless quantity — not on min_sigma, which is a residual-scale
  // floor in metres and happens to share the 1e-12 default.
  if (total <= kMinMeanRobustWeight * static_cast<double>(w.size())) {
    w = weights_for(RobustLoss::kHuber);
  }
  return w;
}

std::vector<double> gaussian_residual_weights(
    const std::vector<double>& residuals, double min_sigma) {
  const double mu = mean(residuals);
  const double sigma = std::max(stddev(residuals), min_sigma);
  std::vector<double> w(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    const double z = (residuals[i] - mu) / sigma;
    w[i] = std::exp(-0.5 * z * z);
  }
  return w;
}

namespace {

// Observability for a finished IRLS run: iterations-to-converge, the final
// robust weight mass (sum of weights / rows — how much of the data the
// loss kept), and a counter of runs that hit the iteration cap.
void note_irls_outcome(const LstsqResult& result) {
  LION_OBS_HIST("irls.iterations", obs::count_bounds(),
                static_cast<double>(result.iterations));
  if (!result.weights.empty()) {
    double mass = 0.0;
    for (double w : result.weights) mass += w;
    LION_OBS_HIST("irls.weight_mass", obs::fraction_bounds(),
                  mass / static_cast<double>(result.weights.size()));
  }
  if (!result.converged) LION_OBS_COUNT("irls.nonconverged", 1);
}

}  // namespace

LstsqResult solve_irls(const Matrix& a, const std::vector<double>& b,
                       const IrlsOptions& options) {
  LION_OBS_SPAN(obs::Stage::kIrls);
  LstsqResult current = solve_least_squares(a, b);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const auto weights = robust_residual_weights(
        current.residuals, options.loss, options.tuning, options.min_sigma);
    LstsqResult next = solve_weighted_least_squares(a, b, weights);
    next.iterations = iter + 1;
    double delta = 0.0;
    for (std::size_t i = 0; i < next.x.size(); ++i) {
      delta = std::max(delta, std::abs(next.x[i] - current.x[i]));
    }
    current = std::move(next);
    if (delta < options.tolerance) {
      current.converged = true;
      note_irls_outcome(current);
      return current;
    }
  }
  current.converged = false;
  note_irls_outcome(current);
  return current;
}

// --------------------------------------------------------------------------
// Workspace path: the same IRLS, operation for operation, over the rows a
// mask selects from the system cached in a SolverWorkspace. Steady state
// (warm workspace, reused result) performs no heap allocation; only the
// rare Cholesky-reject -> QR fallback materializes the subsystem.
// --------------------------------------------------------------------------

namespace {

// Solve the (optionally weighted) normal equations of the masked subsystem
// with the small kernels; `weights[k]` weights the k-th *selected* row.
// Mirrors solve_normal_or_qr on the materialized subsystem.
SolveStatus small_solve_masked(const SolverWorkspace& ws, const char* mask,
                               std::size_t count, const double* weights,
                               double* x) {
  const std::size_t p = ws.cols();
  if (count < p) return SolveStatus::kUnderdetermined;
  SmallGram g;
  g.reset(p);
  double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  if (weights) {
    accumulate_weighted_masked(ws, mask, weights, g, rhs);
  } else {
    accumulate_masked(ws, mask, g, rhs);
  }
  g.mirror();
  SmallCholesky chol;
  if (small_cholesky_factor(g, chol)) {
    small_cholesky_solve(chol, rhs, x);
    return SolveStatus::kOk;
  }
  // Normal equations rejected: QR on the (row-scaled, for WLS) subsystem,
  // with the rank-deficiency throw turned into a status via the same
  // |R_ii| < kSingularTol cutoff.
  Matrix design(count, p);
  std::vector<double> target(count);
  std::size_t sel = 0;
  for (std::size_t r = 0; r < ws.rows(); ++r) {
    if (mask && !mask[r]) continue;
    const double* row = ws.row(r);
    for (std::size_t c = 0; c < p; ++c) design(sel, c) = row[c];
    target[sel] = ws.rhs(r);
    if (weights) {
      const double s = std::sqrt(std::max(0.0, weights[sel]));
      for (std::size_t c = 0; c < p; ++c) design(sel, c) *= s;
      target[sel] *= s;
    }
    ++sel;
  }
  const HouseholderQR qr(std::move(design));
  for (const double d : qr.r_diagonal()) {
    if (d < kSingularTol) return SolveStatus::kRankDeficient;
  }
  const auto xs = qr.solve(target);
  for (std::size_t c = 0; c < p; ++c) x[c] = xs[c];
  return SolveStatus::kOk;
}

// finalize() over the masked subsystem: residuals, mean, rms.
void finalize_masked(const SolverWorkspace& ws, const char* mask,
                     std::size_t count, LstsqResult& out) {
  const std::size_t p = ws.cols();
  out.residuals.resize(count);
  std::size_t sel = 0;
  for (std::size_t r = 0; r < ws.rows(); ++r) {
    if (mask && !mask[r]) continue;
    const double* row = ws.row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < p; ++c) s += row[c] * out.x[c];
    out.residuals[sel++] = s - ws.rhs(r);
  }
  out.mean_residual = mean(out.residuals);
  double ss = 0.0;
  for (double r : out.residuals) ss += r * r;
  out.rms_residual =
      out.residuals.empty()
          ? 0.0
          : std::sqrt(ss / static_cast<double>(out.residuals.size()));
}

// robust_residual_weights / gaussian_residual_weights into ws.weights,
// using the workspace scratch instead of fresh vectors.
void robust_weights_into_ws(SolverWorkspace& ws,
                            const std::vector<double>& residuals,
                            RobustLoss loss, double tuning, double min_sigma) {
  const std::size_t n = residuals.size();
  ws.weights.resize(n);
  if (loss == RobustLoss::kGaussian) {
    const double mu = mean(residuals);
    const double sigma = std::max(stddev(residuals), min_sigma);
    for (std::size_t i = 0; i < n; ++i) {
      const double z = (residuals[i] - mu) / sigma;
      ws.weights[i] = std::exp(-0.5 * z * z);
    }
    return;
  }
  if (n == 0) return;
  ws.median_scratch.resize(n);
  std::copy(residuals.begin(), residuals.end(), ws.median_scratch.begin());
  const double med = median_in_place(ws.median_scratch.data(),
                                     ws.median_scratch.data() + n);
  ws.abs_dev.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.abs_dev[i] = std::abs(residuals[i] - med);
  }
  const double sigma =
      std::max(1.4826 * median_in_place(ws.abs_dev.data(), ws.abs_dev.data() + n),
               min_sigma);
  const double c = tuning > 0.0
                       ? tuning
                       : (loss == RobustLoss::kHuber ? 1.345 : 4.685);
  auto fill = [&](RobustLoss l) {
    for (std::size_t i = 0; i < n; ++i) {
      const double z = std::abs(residuals[i] - med) / sigma;
      if (l == RobustLoss::kHuber) {
        ws.weights[i] = z <= c ? 1.0 : c / z;
      } else {  // Tukey biweight
        const double u = z / c;
        ws.weights[i] = u < 1.0 ? (1.0 - u * u) * (1.0 - u * u) : 0.0;
      }
    }
  };
  fill(loss);
  double total = 0.0;
  for (double wi : ws.weights) total += wi;
  if (total <= kMinMeanRobustWeight * static_cast<double>(n)) {
    fill(RobustLoss::kHuber);
  }
}

}  // namespace

SolveStatus solve_irls_masked(SolverWorkspace& ws, const char* mask,
                              std::size_t count, const IrlsOptions& options,
                              LstsqResult& out) {
  LION_OBS_SPAN(obs::Stage::kIrls);
  const std::size_t p = ws.cols();
  double x[kSmallMaxCols];
  // OLS seed (the classic path's solve_least_squares).
  SolveStatus st = small_solve_masked(ws, mask, count, nullptr, x);
  if (st != SolveStatus::kOk) return st;
  out.x.resize(p);
  std::copy(x, x + p, out.x.begin());
  out.weights.assign(count, 1.0);
  finalize_masked(ws, mask, count, out);
  out.iterations = 0;
  out.converged = true;

  LstsqResult* cur = &out;
  LstsqResult* nxt = &ws.irls_scratch;
  bool converged = false;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    robust_weights_into_ws(ws, cur->residuals, options.loss, options.tuning,
                           options.min_sigma);
    st = small_solve_masked(ws, mask, count, ws.weights.data(), x);
    if (st != SolveStatus::kOk) return st;
    nxt->x.resize(p);
    std::copy(x, x + p, nxt->x.begin());
    nxt->weights.resize(count);
    std::copy(ws.weights.begin(), ws.weights.end(), nxt->weights.begin());
    finalize_masked(ws, mask, count, *nxt);
    nxt->iterations = iter + 1;
    nxt->converged = true;
    double delta = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      delta = std::max(delta, std::abs(nxt->x[i] - cur->x[i]));
    }
    std::swap(cur, nxt);
    if (delta < options.tolerance) {
      converged = true;
      break;
    }
  }
  cur->converged = converged;
  note_irls_outcome(*cur);
  if (cur != &out) std::swap(out, ws.irls_scratch);
  return SolveStatus::kOk;
}

void solve_irls(const Matrix& a, const std::vector<double>& b,
                const IrlsOptions& options, SolverWorkspace& ws,
                LstsqResult& out) {
  if (a.cols() == 0 || a.cols() > kSmallMaxCols) {
    out = solve_irls(a, b, options);
    return;
  }
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  }
  ws.load(a, b);
  const SolveStatus st = solve_irls_masked(ws, nullptr, a.rows(), options, out);
  if (st == SolveStatus::kUnderdetermined) {
    throw std::domain_error("least squares: underdetermined system");
  }
  if (st != SolveStatus::kOk) {
    throw std::domain_error("HouseholderQR::solve: rank deficient");
  }
}

LstsqResult solve_irls(const Matrix& a, const std::vector<double>& b,
                       const IrlsOptions& options, SolverWorkspace& ws) {
  LstsqResult out;
  solve_irls(a, b, options, ws, out);
  return out;
}

}  // namespace lion::linalg
