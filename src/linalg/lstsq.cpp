#include "linalg/lstsq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"
#include "linalg/stats.hpp"
#include "obs/obs.hpp"

namespace lion::linalg {

namespace {

// Fill residual/summary fields of a result whose x is already set.
void finalize(const Matrix& a, const std::vector<double>& b,
              LstsqResult& out) {
  out.residuals = a.multiply(out.x);
  for (std::size_t i = 0; i < b.size(); ++i) out.residuals[i] -= b[i];
  out.mean_residual = mean(out.residuals);
  double ss = 0.0;
  for (double r : out.residuals) ss += r * r;
  out.rms_residual =
      out.residuals.empty()
          ? 0.0
          : std::sqrt(ss / static_cast<double>(out.residuals.size()));
}

std::vector<double> solve_normal_or_qr(const Matrix& a,
                                       const std::vector<double>& b,
                                       const std::vector<double>* weights) {
  if (a.rows() < a.cols()) {
    throw std::domain_error("least squares: underdetermined system");
  }
  const Matrix gram = weights ? a.weighted_gram(*weights) : a.gram();
  const std::vector<double> rhs =
      weights ? a.weighted_transpose_multiply(*weights, b)
              : a.transpose_multiply(b);
  if (const auto chol = Cholesky::factor(gram)) return chol->solve(rhs);
  // Normal equations failed (rank-deficient or badly conditioned): fall back
  // to QR on the (row-scaled, for WLS) design matrix.
  Matrix design = a;
  std::vector<double> target = b;
  if (weights) {
    for (std::size_t r = 0; r < design.rows(); ++r) {
      const double s = std::sqrt(std::max(0.0, (*weights)[r]));
      for (std::size_t c = 0; c < design.cols(); ++c) design(r, c) *= s;
      target[r] *= s;
    }
  }
  return HouseholderQR(std::move(design)).solve(target);
}

}  // namespace

LstsqResult solve_least_squares(const Matrix& a,
                                const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  }
  LstsqResult out;
  out.x = solve_normal_or_qr(a, b, nullptr);
  out.weights.assign(a.rows(), 1.0);
  finalize(a, b, out);
  return out;
}

LstsqResult solve_weighted_least_squares(const Matrix& a,
                                         const std::vector<double>& b,
                                         const std::vector<double>& weights) {
  if (b.size() != a.rows() || weights.size() != a.rows()) {
    throw std::invalid_argument(
        "solve_weighted_least_squares: size mismatch");
  }
  LstsqResult out;
  out.x = solve_normal_or_qr(a, b, &weights);
  out.weights = weights;
  finalize(a, b, out);
  return out;
}

const char* robust_loss_name(RobustLoss loss) {
  switch (loss) {
    case RobustLoss::kGaussian:
      return "gaussian";
    case RobustLoss::kHuber:
      return "huber";
    case RobustLoss::kTukey:
      return "tukey";
  }
  return "unknown";
}

std::vector<double> robust_residual_weights(
    const std::vector<double>& residuals, RobustLoss loss, double tuning,
    double min_sigma) {
  if (loss == RobustLoss::kGaussian) {
    return gaussian_residual_weights(residuals, min_sigma);
  }
  if (residuals.empty()) return {};
  const double med = median(residuals);
  std::vector<double> abs_dev(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    abs_dev[i] = std::abs(residuals[i] - med);
  }
  const double sigma = std::max(1.4826 * median(abs_dev), min_sigma);

  const double c = tuning > 0.0
                       ? tuning
                       : (loss == RobustLoss::kHuber ? 1.345 : 4.685);
  auto weights_for = [&](RobustLoss l) {
    std::vector<double> w(residuals.size());
    for (std::size_t i = 0; i < residuals.size(); ++i) {
      const double z = std::abs(residuals[i] - med) / sigma;
      if (l == RobustLoss::kHuber) {
        w[i] = z <= c ? 1.0 : c / z;
      } else {  // Tukey biweight
        const double u = z / c;
        w[i] = u < 1.0 ? (1.0 - u * u) * (1.0 - u * u) : 0.0;
      }
    }
    return w;
  };

  auto w = weights_for(loss);
  double total = 0.0;
  for (double wi : w) total += wi;
  if (total <= min_sigma) w = weights_for(RobustLoss::kHuber);
  return w;
}

std::vector<double> gaussian_residual_weights(
    const std::vector<double>& residuals, double min_sigma) {
  const double mu = mean(residuals);
  const double sigma = std::max(stddev(residuals), min_sigma);
  std::vector<double> w(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    const double z = (residuals[i] - mu) / sigma;
    w[i] = std::exp(-0.5 * z * z);
  }
  return w;
}

namespace {

// Observability for a finished IRLS run: iterations-to-converge, the final
// robust weight mass (sum of weights / rows — how much of the data the
// loss kept), and a counter of runs that hit the iteration cap.
void note_irls_outcome(const LstsqResult& result) {
  LION_OBS_HIST("irls.iterations", obs::count_bounds(),
                static_cast<double>(result.iterations));
  if (!result.weights.empty()) {
    double mass = 0.0;
    for (double w : result.weights) mass += w;
    LION_OBS_HIST("irls.weight_mass", obs::fraction_bounds(),
                  mass / static_cast<double>(result.weights.size()));
  }
  if (!result.converged) LION_OBS_COUNT("irls.nonconverged", 1);
}

}  // namespace

LstsqResult solve_irls(const Matrix& a, const std::vector<double>& b,
                       const IrlsOptions& options) {
  LION_OBS_SPAN(obs::Stage::kIrls);
  LstsqResult current = solve_least_squares(a, b);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const auto weights = robust_residual_weights(
        current.residuals, options.loss, options.tuning, options.min_sigma);
    LstsqResult next = solve_weighted_least_squares(a, b, weights);
    next.iterations = iter + 1;
    double delta = 0.0;
    for (std::size_t i = 0; i < next.x.size(); ++i) {
      delta = std::max(delta, std::abs(next.x[i] - current.x[i]));
    }
    current = std::move(next);
    if (delta < options.tolerance) {
      current.converged = true;
      note_irls_outcome(current);
      return current;
    }
  }
  current.converged = false;
  note_irls_outcome(current);
  return current;
}

}  // namespace lion::linalg
