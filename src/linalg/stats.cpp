#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lion::linalg {

namespace {

// Floyd-Rivest selection (CACM Algorithm 489): place the k-th smallest
// element at a[k] with everything left of k no larger and everything
// right of k no smaller — the same postcondition as std::nth_element,
// reached with ~1.5n comparisons instead of introselect's ~3n. The k-th
// order statistic of a finite multiset is a single well-defined double,
// so swapping the selection algorithm cannot change any downstream
// value; this routine sits under every LMedS score and MAD scale in the
// solver hot path. Two caveats shared with nth_element: input must be
// NaN-free (callers feed sanitized residuals), and when elements compare
// equal but differ in bits (only possible for +0.0 vs -0.0) *which* of
// them lands at position k is arbitrary — the solver paths never produce
// -0.0 (sums start at +0.0 and squares/abs are non-negative), so the
// selected bits are reproducible there.
void floyd_rivest_select(double* a, std::ptrdiff_t left, std::ptrdiff_t right,
                         std::ptrdiff_t k) {
  while (right > left) {
    if (right - left > 600) {
      // Select within a small sample around k first, so the main
      // partition below runs against a near-optimal pivot.
      const double n = static_cast<double>(right - left + 1);
      const double i = static_cast<double>(k - left + 1);
      const double z = std::log(n);
      const double s = 0.5 * std::exp(2.0 * z / 3.0);
      const double sd = 0.5 * std::sqrt(z * s * (n - s) / n) *
                        (i - n / 2.0 < 0.0 ? -1.0 : 1.0);
      const auto new_left = std::max(
          left, static_cast<std::ptrdiff_t>(
                    static_cast<double>(k) - i * s / n + sd));
      const auto new_right = std::min(
          right, static_cast<std::ptrdiff_t>(
                     static_cast<double>(k) + (n - i) * s / n + sd));
      floyd_rivest_select(a, new_left, new_right, k);
    }
    const double t = a[k];
    std::ptrdiff_t i = left;
    std::ptrdiff_t j = right;
    std::swap(a[left], a[k]);
    if (a[right] > t) std::swap(a[right], a[left]);
    while (i < j) {
      std::swap(a[i], a[j]);
      ++i;
      --j;
      while (a[i] < t) ++i;
      while (a[j] > t) --j;
    }
    if (a[left] == t) {
      std::swap(a[left], a[j]);
    } else {
      ++j;
      std::swap(a[j], a[right]);
    }
    if (j <= k) left = j + 1;
    if (k <= j) right = j - 1;
  }
}

}  // namespace

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  return median_in_place(v.data(), v.data() + v.size());
}

double median_in_place(double* first, double* last) {
  if (first == last) throw std::invalid_argument("median: empty input");
  const auto n = static_cast<std::size_t>(last - first);
  const std::size_t mid = n / 2;
  floyd_rivest_select(first, 0, static_cast<std::ptrdiff_t>(n) - 1,
                      static_cast<std::ptrdiff_t>(mid));
  const double hi = first[mid];
  if (n % 2 == 1) return hi;
  const double lo =
      *std::max_element(first, first + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double min_value(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(v.begin(), v.end());
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(samples.size());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    cdf.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

Summary summarize(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("summarize: empty input");
  Summary s;
  s.mean = mean(v);
  s.stddev = stddev(v);
  s.median = median(v);
  s.p90 = percentile(v, 90.0);
  s.min = min_value(v);
  s.max = max_value(v);
  s.count = v.size();
  return s;
}

}  // namespace lion::linalg
