#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lion::linalg {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  if (v.empty()) throw std::invalid_argument("median: empty input");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double min_value(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(v.begin(), v.end());
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(samples.size());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    cdf.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

Summary summarize(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("summarize: empty input");
  Summary s;
  s.mean = mean(v);
  s.stddev = stddev(v);
  s.median = median(v);
  s.p90 = percentile(v, 90.0);
  s.min = min_value(v);
  s.max = max_value(v);
  s.count = v.size();
  return s;
}

}  // namespace lion::linalg
