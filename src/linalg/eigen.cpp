#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lion::linalg {

EigenDecomposition symmetric_eigen(const Matrix& input) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("symmetric_eigen: matrix not square");
  }
  const std::size_t n = input.rows();
  // Symmetrize from the lower triangle.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      a(i, j) = input(i, j);
      a(j, i) = input(i, j);
    }
  }
  Matrix v = Matrix::identity(n);

  constexpr int kMaxSweeps = 64;
  constexpr double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    // Off-diagonal Frobenius mass.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (off < kTol * kTol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
  }
  return out;
}

std::size_t spd_rank(const EigenDecomposition& eig, double tol) {
  if (eig.values.empty()) return 0;
  const double scale = std::max(std::abs(eig.values.front()), 1e-300);
  std::size_t rank = 0;
  for (double v : eig.values) {
    if (v > tol * scale) ++rank;
  }
  return rank;
}

}  // namespace lion::linalg
