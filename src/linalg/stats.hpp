// Descriptive statistics used by the solvers, the adaptive parameter
// selection scheme, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace lion::linalg {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& v);

/// Population variance; 0 for fewer than two samples.
double variance(const std::vector<double>& v);

/// Median (average of middle two for even sizes). Throws on empty input.
double median(std::vector<double> v);

/// Median of [first, last), partially reordering the range in place (the
/// allocation-free form of median() for callers that own a scratch
/// buffer). Same selection, same result. Throws on an empty range.
double median_in_place(double* first, double* last);

/// p-th percentile in [0, 100] with linear interpolation. Throws on empty
/// input or p outside [0, 100].
double percentile(std::vector<double> v, double p);

/// Min / max; throw on empty input.
double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);

/// Root mean square; 0 for an empty input.
double rms(const std::vector<double>& v);

/// One point of an empirical CDF.
struct CdfPoint {
  double value;     ///< sample value
  double fraction;  ///< fraction of samples <= value, in (0, 1]
};

/// Empirical CDF of the samples (sorted ascending).
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

/// Summary bundle used by the bench harnesses.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Compute all summary fields at once. Throws on empty input.
Summary summarize(const std::vector<double>& v);

}  // namespace lion::linalg
