#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace lion::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix*: shape mismatch");
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      double* orow = out.row_data(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * v[c];
    out[r] = s;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix Matrix::weighted_gram(const std::vector<double>& w) const {
  if (w.size() != rows_) {
    throw std::invalid_argument("Matrix::weighted_gram: weight size mismatch");
  }
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    const double wr = w[r];
    if (wr == 0.0) continue;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ri = wr * row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

std::vector<double> Matrix::transpose_multiply(
    const std::vector<double>& v) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::transpose_multiply: size mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * vr;
  }
  return out;
}

std::vector<double> Matrix::weighted_transpose_multiply(
    const std::vector<double>& w, const std::vector<double>& v) const {
  if (w.size() != rows_ || v.size() != rows_) {
    throw std::invalid_argument(
        "Matrix::weighted_transpose_multiply: size mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    const double wv = w[r] * v[r];
    if (wv == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * wv;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r ? "\n[" : "[");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) os << ", ";
      os << m(r, c);
    }
    os << ']';
  }
  return os;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
    }
  }
  return true;
}

}  // namespace lion::linalg
