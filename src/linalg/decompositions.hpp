// Dense matrix decompositions and linear-system solvers.
//
// The LION normal equations are tiny (3x3 or 4x4) and symmetric positive
// definite in well-posed geometry, so Cholesky is the fast path. LU with
// partial pivoting backs it up for indefinite systems, and Householder QR
// solves the tall least-squares system directly when the normal equations
// would be too ill-conditioned.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace lion::linalg {

/// Pivot / R-diagonal magnitude below which a system is treated as
/// singular (PartialPivLU::factor rejects, HouseholderQR::solve throws).
/// Exported so the non-throwing small-system kernels can classify rank
/// deficiency with exactly the same cutoff.
inline constexpr double kSingularTol = 1e-13;

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Factorization fails (returns nullopt) when A is not SPD within
/// numerical tolerance.
class Cholesky {
 public:
  /// Factor the given symmetric matrix; only the lower triangle is read.
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Solve A x = b using the stored factorization.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant of A (product of squared diagonal of L).
  double determinant() const;

  const Matrix& l() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// LU factorization with partial pivoting: P A = L U.
class PartialPivLU {
 public:
  /// Factor a square matrix. Returns nullopt when A is singular to working
  /// precision.
  static std::optional<PartialPivLU> factor(const Matrix& a);

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant (with pivot sign).
  double determinant() const;

 private:
  PartialPivLU(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}
  Matrix lu_;                      // packed L (unit diag, below) and U (above)
  std::vector<std::size_t> perm_;  // row permutation
  int sign_;                       // permutation parity
};

/// Householder QR factorization A = Q R of a rows >= cols matrix.
class HouseholderQR {
 public:
  explicit HouseholderQR(Matrix a);

  /// Minimum-norm residual solution of the least-squares problem
  /// min_x ||A x - b||_2. Requires full column rank.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Absolute values of the R diagonal, useful for rank/conditioning checks.
  std::vector<double> r_diagonal() const;

  /// Crude condition estimate: max|R_ii| / min|R_ii|.
  double condition_estimate() const;

 private:
  Matrix qr_;                 // R in the upper triangle, reflectors below
  std::vector<double> beta_;  // Householder scalars
};

/// Invert a small square matrix via LU. Throws std::domain_error when
/// singular. Intended for the <=4x4 matrices in LION; not for big systems.
Matrix inverse(const Matrix& a);

/// Solve the square system A x = b (Cholesky when SPD-shaped, LU fallback).
/// Throws std::domain_error when singular.
std::vector<double> solve_square(const Matrix& a, const std::vector<double>& b);

}  // namespace lion::linalg
