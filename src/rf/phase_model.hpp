// The backscatter phase model of Eq. (1):
//
//   theta = (theta_d + theta_T + theta_R) mod 2*pi,
//   theta_d = (2*pi / lambda) * 2d
//
// where d is the one-way antenna-tag distance (the signal travels 2d round
// trip), theta_T is the tag's reflection offset and theta_R the reader
// transmit/receive chain offset.
#pragma once

#include <vector>

#include "rf/constants.hpp"

namespace lion::rf {

/// Wrap an angle into [0, 2*pi).
double wrap_phase(double radians);

/// Wrap an angle into (-pi, pi].
double wrap_phase_symmetric(double radians);

/// Distance-induced phase rotation theta_d for a one-way distance d [m].
constexpr double distance_phase(double distance_m,
                                double wavelength_m = kDefaultWavelength) {
  return kTwoPi / wavelength_m * 2.0 * distance_m;
}

/// Full reported phase per Eq. (1): wrapped sum of the distance term and the
/// hardware offsets.
double reported_phase(double distance_m, double tag_offset_rad,
                      double reader_offset_rad,
                      double wavelength_m = kDefaultWavelength);

/// Invert the distance term: one-way distance change corresponding to an
/// (unwrapped) phase change, Eq. (6): delta_d = lambda/(4*pi) * delta_theta.
constexpr double phase_to_distance_delta(
    double phase_delta_rad, double wavelength_m = kDefaultWavelength) {
  return wavelength_m / (4.0 * kPi) * phase_delta_rad;
}

/// Forward direction of Eq. (6): phase change for a one-way distance change.
constexpr double distance_delta_to_phase(
    double distance_delta_m, double wavelength_m = kDefaultWavelength) {
  return 4.0 * kPi / wavelength_m * distance_delta_m;
}

/// Smallest absolute angular difference between two wrapped phases, in
/// [0, pi]. Useful for comparing calibrated offsets.
double circular_distance(double a_rad, double b_rad);

/// Circular mean of wrapped angles (atan2 of averaged unit vectors).
/// Returns a value in [0, 2*pi). Throws on empty input.
double circular_mean(const std::vector<double>& angles_rad);

}  // namespace lion::rf
