// Antenna model.
//
// The crux of the paper: a COTS antenna's *electrical* phase center — the
// point signals effectively radiate from — sits a few centimetres away from
// the *physical* center that an experimenter measures with a ruler. The
// simulator keeps the displacement as hidden ground truth; localization code
// only ever sees the physical center, exactly like the paper's testbed.
#pragma once

#include <cstdint>

#include "linalg/vec.hpp"
#include "rf/constants.hpp"

namespace lion::rf {

using linalg::Vec3;

/// Static description of one antenna.
struct Antenna {
  /// Where the experimenter believes the antenna is (ruler measurement).
  Vec3 physical_center{};

  /// Ground-truth offset from the physical center to the electrical phase
  /// center. Hidden from the localization algorithms; typically 2-3 cm for
  /// the Laird S9028PCL per the paper's Fig. 2.
  Vec3 phase_center_displacement{};

  /// Reader transmit/receive chain phase offset theta_R [rad].
  double reader_offset_rad = 0.0;

  /// Boresight (facing direction), unit vector. Defaults to -y: the paper's
  /// rigs put the antenna behind the tag plane looking toward it.
  Vec3 boresight{0.0, -1.0, 0.0};

  /// Full half-power beamwidth [rad]. Laird S9028PCL is ~70 degrees.
  double beamwidth_rad = 70.0 * kPi / 180.0;

  /// Phase-pattern coefficient [rad]: real antennas are only "phase flat"
  /// inside the main beam — off axis the radiated phase deviates (the
  /// effective phase center moves). Modeled as a round-trip phase error of
  /// pattern_coefficient * ((angle - beam/2) / (beam/2))^2 for angles
  /// beyond the half-beam, zero inside. This coherent bias (distinct from
  /// the off-beam *noise* inflation) is what degrades wide scanning ranges
  /// in Fig. 16-17. Zero disables.
  double pattern_coefficient = 0.0;

  /// Identifier used in multi-antenna experiments and reports.
  std::uint32_t id = 0;

  /// The true phase center (hidden ground truth).
  Vec3 phase_center() const {
    return physical_center + phase_center_displacement;
  }

  /// Angle between the boresight and the direction to a point, in [0, pi].
  double off_boresight_angle(const Vec3& point) const;

  /// Normalized field gain toward a point: 1 on boresight, cos^n falloff
  /// calibrated so gain = 1/sqrt(2) (half power) at beamwidth/2, floored at
  /// a -20 dB backlobe.
  double field_gain(const Vec3& point) const;

  /// Round-trip phase-pattern deviation toward a point [rad]; zero inside
  /// the main beam, quadratic beyond (see pattern_coefficient).
  double pattern_phase(const Vec3& point) const;
};

/// Convenience builder: an antenna at the given physical center facing the
/// -y direction with a reproducible pseudo-random displacement and reader
/// offset derived from `id` (each physical antenna unit has its own quirks).
Antenna make_antenna(const Vec3& physical_center, std::uint32_t id);

}  // namespace lion::rf
