#include "rf/channel.hpp"

#include <cmath>

#include "rf/phase_model.hpp"

namespace lion::rf {

Vec3 Reflector::mirror(const Vec3& p) const {
  const Vec3 n = normal.normalized();
  const double dist = (p - point).dot(n);
  return p - 2.0 * dist * n;
}

std::complex<double> Channel::one_way_channel(const Antenna& antenna,
                                              const Vec3& tag_position) const {
  return one_way_channel_at(antenna, tag_position, wavelength_);
}

std::complex<double> Channel::one_way_channel_at(const Antenna& antenna,
                                                 const Vec3& tag_position,
                                                 double wavelength_m) const {
  using namespace std::complex_literals;
  const Vec3 source = antenna.phase_center();

  // Line of sight.
  const double d0 = linalg::distance(source, tag_position);
  const double g0 = antenna.field_gain(tag_position);
  std::complex<double> h =
      (g0 / std::max(d0, 1e-6)) *
      std::exp(1i * (kTwoPi * d0 / wavelength_m));

  // One specular bounce per reflector, via the image source. The bounce
  // point is where the image->tag segment crosses the reflector plane; the
  // antenna gain is evaluated toward that departure direction.
  for (const Reflector& r : reflectors_) {
    const Vec3 image = r.mirror(source);
    const Vec3 n = r.normal.normalized();
    const Vec3 seg = tag_position - image;
    const double denom = seg.dot(n);
    if (std::abs(denom) < 1e-12) continue;  // ray parallel to the plane
    const double t = (r.point - image).dot(n) / denom;
    if (t <= 0.0 || t >= 1.0) continue;  // no specular point on the segment
    const Vec3 bounce = image + t * seg;
    const double dr = linalg::distance(image, tag_position);
    const double gr = antenna.field_gain(bounce);
    const double amp = r.coefficient * gr / std::max(dr, 1e-6);
    double phase = kTwoPi * dr / wavelength_m;
    if (r.phase_flip) phase += kPi;
    h += amp * std::exp(1i * phase);
  }

  // Point scatterers: antenna -> scatterer -> tag.
  for (const Scatterer& s : scatterers_) {
    const double d_as = linalg::distance(source, s.position);
    const double d_st = linalg::distance(s.position, tag_position);
    const double amp = s.reflectivity * antenna.field_gain(s.position) /
                       std::max(d_as * d_st, 1e-6);
    const double phase = kTwoPi * (d_as + d_st) / wavelength_m;
    h += amp * std::exp(1i * phase);
  }
  return h;
}

double Channel::effective_sigma(const Antenna& antenna,
                                const Vec3& tag_pos) const {
  const double half = 0.5 * antenna.beamwidth_rad;
  const double angle = antenna.off_boresight_angle(tag_pos);
  const double excess = std::max(0.0, angle - half) / half;
  return noise_.phase_sigma * (1.0 + noise_.off_beam_gain * excess);
}

double Channel::noiseless_phase(const Antenna& antenna, const Tag& tag,
                                const Vec3& tag_position) const {
  return noiseless_phase_at(antenna, tag, tag_position, wavelength_);
}

double Channel::noiseless_phase_at(const Antenna& antenna, const Tag& tag,
                                   const Vec3& tag_position,
                                   double wavelength_m) const {
  const std::complex<double> h =
      one_way_channel_at(antenna, tag_position, wavelength_m);
  // Reciprocity: round-trip phase is twice the one-way argument.
  return wrap_phase(2.0 * std::arg(h) + antenna.pattern_phase(tag_position) +
                    tag.tag_offset_rad + antenna.reader_offset_rad);
}

std::optional<Observation> Channel::read(const Antenna& antenna,
                                         const Tag& tag,
                                         const Vec3& tag_position,
                                         Rng& rng) const {
  return read_at(antenna, tag, tag_position, rng, wavelength_);
}

std::optional<Observation> Channel::read_at(const Antenna& antenna,
                                            const Tag& tag,
                                            const Vec3& tag_position, Rng& rng,
                                            double wavelength_m) const {
  std::complex<double> h =
      one_way_channel_at(antenna, tag_position, wavelength_m);
  if (noise_.diffuse_amplitude > 0.0) {
    const double s = noise_.diffuse_amplitude / std::sqrt(2.0);
    h += std::complex<double>(rng.gaussian(s), rng.gaussian(s));
  }
  const double incident = std::abs(h);
  if (incident < tag.sensitivity_floor) return std::nullopt;

  double phase = 2.0 * std::arg(h) + antenna.pattern_phase(tag_position) +
                 tag.tag_offset_rad + antenna.reader_offset_rad;
  phase += rng.gaussian(effective_sigma(antenna, tag_position));
  phase = wrap_phase(phase);
  if (noise_.quantization_steps > 0) {
    const double step = kTwoPi / noise_.quantization_steps;
    phase = wrap_phase(std::round(phase / step) * step);
  }

  Observation obs;
  obs.phase = phase;
  // Round-trip backscatter field ~ |h|^2 * efficiency; report in dB with a
  // nominal reader constant so values land in the familiar -70..-30 range.
  const double rt_field = incident * incident * tag.backscatter_efficiency;
  obs.rssi_dbm = 20.0 * std::log10(std::max(rt_field, 1e-12)) + 0.5;
  obs.true_distance = linalg::distance(antenna.phase_center(), tag_position);
  return obs;
}

}  // namespace lion::rf
