#include "rf/antenna.hpp"

#include <algorithm>
#include <cmath>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::rf {

double Antenna::off_boresight_angle(const Vec3& point) const {
  const Vec3 dir = point - phase_center();
  const double n = dir.norm() * boresight.norm();
  if (n == 0.0) return 0.0;
  const double c = std::clamp(dir.dot(boresight) / n, -1.0, 1.0);
  return std::acos(c);
}

double Antenna::field_gain(const Vec3& point) const {
  const double angle = off_boresight_angle(point);
  // cos^n pattern with n chosen so that gain(beamwidth/2) = 2^{-1/2}
  // (half power in field terms is -3 dB power = 1/sqrt(2) field).
  const double half = 0.5 * beamwidth_rad;
  const double cos_half = std::cos(half);
  if (cos_half <= 0.0) return 1.0;  // degenerate ultra-wide beam
  const double n = std::log(1.0 / std::sqrt(2.0)) / std::log(cos_half);
  const double c = std::cos(angle);
  constexpr double kBacklobe = 0.1;  // -20 dB field floor behind the antenna
  if (c <= 0.0) return kBacklobe;
  return std::max(kBacklobe, std::pow(c, n));
}

double Antenna::pattern_phase(const Vec3& point) const {
  if (pattern_coefficient == 0.0) return 0.0;
  const double half = 0.5 * beamwidth_rad;
  if (half <= 0.0) return 0.0;
  const double excess = off_boresight_angle(point) - half;
  if (excess <= 0.0) return 0.0;
  const double z = excess / half;
  return pattern_coefficient * z * z;
}

Antenna make_antenna(const Vec3& physical_center, std::uint32_t id) {
  // Derive stable per-unit quirks from the id so experiments are
  // reproducible: displacement magnitude 2-3 cm (Fig. 2), offset anywhere
  // on the circle (Fig. 3).
  Rng rng(0xA57E77A0ULL + id * 0x9E3779B97F4A7C15ULL);
  Antenna a;
  a.physical_center = physical_center;
  a.id = id;
  const double magnitude = rng.uniform(0.02, 0.03);
  // Isotropic random direction: patch-array phase centers wander both
  // laterally and along boresight (feed-network depth).
  Vec3 dir{rng.gaussian(1.0), rng.gaussian(1.0), rng.gaussian(1.0)};
  if (dir.norm() == 0.0) dir = Vec3{1.0, 0.0, 0.0};
  a.phase_center_displacement = dir.normalized() * magnitude;
  a.reader_offset_rad = rng.uniform(0.0, kTwoPi);
  return a;
}

}  // namespace lion::rf
