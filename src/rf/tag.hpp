// Passive UHF tag model.
//
// A tag contributes its own constant phase rotation theta_T (chip input
// impedance + antenna matching vary unit to unit, Fig. 3 of the paper) and
// a backscatter power loss that together with the channel determines RSSI.
#pragma once

#include <cstdint>

namespace lion::rf {

/// Static description of one tag.
struct Tag {
  /// Reflection-characteristic phase offset theta_T [rad].
  double tag_offset_rad = 0.0;

  /// Backscatter field-amplitude efficiency in (0, 1]; affects RSSI only.
  double backscatter_efficiency = 0.5;

  /// Minimum field amplitude at the tag required to power the chip; reads
  /// with less incident power are dropped by the reader simulator.
  double sensitivity_floor = 0.0;

  /// Identifier used in multi-tag experiments and reports.
  std::uint32_t id = 0;
};

/// Convenience builder: a tag with reproducible per-unit quirks derived
/// from `id` (offset anywhere on the circle, efficiency 0.4-0.6).
Tag make_tag(std::uint32_t id);

}  // namespace lion::rf
