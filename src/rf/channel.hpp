// Propagation channel: line-of-sight + image-method specular multipath +
// measurement noise.
//
// The simulator computes a one-way complex channel
//
//   h = sum_k A_k * exp(+j * 2*pi * d_k / lambda)
//
// over the LoS path and each reflector's image path, and reports the
// round-trip backscatter phase arg(h^2) = 2*arg(h) (reciprocal channel)
// plus the hardware offsets of Eq. (1), Gaussian phase noise, and optional
// reader quantization. The +j sign convention makes the reported phase
// increase with distance, matching theta_d = (2*pi/lambda) * 2d.
#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "linalg/vec.hpp"
#include "rf/antenna.hpp"
#include "rf/constants.hpp"
#include "rf/rng.hpp"
#include "rf/tag.hpp"

namespace lion::rf {

/// A point scatterer (metal fixture, shelf corner, motor housing): re-rad-
/// iates the incident field from a fixed position. Its contribution to the
/// one-way channel is reflectivity * g / (d_as * d_st) with path phase
/// 2*pi*(d_as + d_st)/lambda — strongly *localized*: it matters most when
/// the tag passes close by, which is exactly the structured multipath that
/// window selection can dodge but take-all-measurements methods cannot.
struct Scatterer {
  Vec3 position{};
  /// Radar-cross-section-like coefficient [m]; 0.05-0.2 is a small metal
  /// fixture.
  double reflectivity = 0.1;
};

/// An infinite specular reflector plane (floor, wall, metal shelf).
struct Reflector {
  Vec3 point{};   ///< any point on the plane
  Vec3 normal{};  ///< unit normal
  /// Field reflection coefficient magnitude in [0, 1]; sign flip (the pi
  /// phase jump of a conductor) is folded in via `phase_flip`.
  double coefficient = 0.3;
  bool phase_flip = true;  ///< reflect with an extra pi rotation

  /// Mirror a point across the plane.
  Vec3 mirror(const Vec3& p) const;
};

/// Measurement-noise configuration.
struct NoiseModel {
  /// Std-dev of additive Gaussian phase noise on boresight [rad]. The
  /// paper's simulations use N(0, 0.1).
  double phase_sigma = 0.1;

  /// Extra noise multiplier growth outside the antenna main beam: effective
  /// sigma = phase_sigma * (1 + off_beam_gain * max(0, angle - beam/2) /
  /// (beam/2)). Reproduces the paper's Fig. 16-17 degradation when the
  /// scanning range exceeds the main beam.
  double off_beam_gain = 3.0;

  /// Reader phase quantization steps per 2*pi; ImpinJ reports 12-bit
  /// (4096). Zero disables quantization.
  unsigned quantization_steps = 4096;

  /// Diffuse (Rayleigh) multipath: a zero-mean complex-Gaussian term of
  /// this RMS field amplitude added to the one-way channel on every read.
  /// A room's reverberant floor is roughly position-independent while the
  /// line-of-sight field decays as 1/d, so the diffuse term's influence on
  /// the reported phase *grows with distance* — the paper's Fig. 14(b)
  /// regime where far-field reads turn heavy-tailed. Zero disables.
  double diffuse_amplitude = 0.0;
};

/// One simulated read.
struct Observation {
  double phase = 0.0;          ///< reported wrapped phase [0, 2*pi)
  double rssi_dbm = 0.0;       ///< received backscatter power estimate
  double true_distance = 0.0;  ///< hidden ground truth, one-way [m]
};

/// Channel simulator for a fixed environment.
class Channel {
 public:
  Channel(NoiseModel noise, std::vector<Reflector> reflectors,
          std::vector<Scatterer> scatterers = {},
          double wavelength_m = kDefaultWavelength)
      : noise_(noise),
        reflectors_(std::move(reflectors)),
        scatterers_(std::move(scatterers)),
        wavelength_(wavelength_m) {}

  /// Free-space channel with default noise.
  Channel() : Channel(NoiseModel{}, {}) {}

  /// Simulate one read of `tag` at `tag_position` by `antenna`.
  /// Returns nullopt when the incident field is below the tag's sensitivity
  /// floor (tag not powered — read misses happen far off beam / far away).
  std::optional<Observation> read(const Antenna& antenna, const Tag& tag,
                                  const Vec3& tag_position, Rng& rng) const;

  /// Like read(), but at an explicit carrier wavelength — used by the
  /// frequency-hopping reader simulation (US-band readers must hop; every
  /// channel sees the same geometry at a slightly different wavelength).
  std::optional<Observation> read_at(const Antenna& antenna, const Tag& tag,
                                     const Vec3& tag_position, Rng& rng,
                                     double wavelength_m) const;

  /// Noise-free wrapped phase for ground-truth assertions in tests.
  double noiseless_phase(const Antenna& antenna, const Tag& tag,
                         const Vec3& tag_position) const;

  /// Noise-free wrapped phase at an explicit wavelength.
  double noiseless_phase_at(const Antenna& antenna, const Tag& tag,
                            const Vec3& tag_position,
                            double wavelength_m) const;

  /// One-way complex channel between a radiating point and the tag
  /// (exposed for tests and for the hologram baseline's forward model).
  std::complex<double> one_way_channel(const Antenna& antenna,
                                       const Vec3& tag_position) const;

  /// One-way channel at an explicit wavelength.
  std::complex<double> one_way_channel_at(const Antenna& antenna,
                                          const Vec3& tag_position,
                                          double wavelength_m) const;

  double wavelength() const { return wavelength_; }
  const NoiseModel& noise() const { return noise_; }
  const std::vector<Reflector>& reflectors() const { return reflectors_; }
  const std::vector<Scatterer>& scatterers() const { return scatterers_; }

 private:
  double effective_sigma(const Antenna& antenna, const Vec3& tag_pos) const;

  NoiseModel noise_;
  std::vector<Reflector> reflectors_;
  std::vector<Scatterer> scatterers_;
  double wavelength_;
};

}  // namespace lion::rf
