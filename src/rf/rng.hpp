// Deterministic random-number utilities.
//
// Every stochastic component in the simulator draws from an explicitly
// seeded engine so that experiments are reproducible run-to-run; benches
// print their seeds alongside results.
#pragma once

#include <cstdint>
#include <random>

namespace lion::rf {

/// Thin wrapper around a seeded Mersenne Twister with the distributions the
/// simulator needs. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x51ED5EEDULL) : engine_(seed) {}

  /// Zero-mean Gaussian draw with the given standard deviation.
  double gaussian(double sigma) {
    if (sigma <= 0.0) return 0.0;
    return std::normal_distribution<double>(0.0, sigma)(engine_);
  }

  /// Gaussian draw with explicit mean.
  double gaussian(double mean, double sigma) {
    if (sigma <= 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator (e.g. one per antenna) so that
  /// adding draws to one component does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lion::rf
