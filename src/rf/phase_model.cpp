#include "rf/phase_model.hpp"

#include <cmath>
#include <stdexcept>

namespace lion::rf {

double wrap_phase(double radians) {
  double r = std::fmod(radians, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

double wrap_phase_symmetric(double radians) {
  double r = std::fmod(radians + kPi, kTwoPi);
  if (r <= 0.0) r += kTwoPi;
  return r - kPi;
}

double reported_phase(double distance_m, double tag_offset_rad,
                      double reader_offset_rad, double wavelength_m) {
  return wrap_phase(distance_phase(distance_m, wavelength_m) +
                    tag_offset_rad + reader_offset_rad);
}

double circular_distance(double a_rad, double b_rad) {
  return std::abs(wrap_phase_symmetric(a_rad - b_rad));
}

double circular_mean(const std::vector<double>& angles_rad) {
  if (angles_rad.empty()) {
    throw std::invalid_argument("circular_mean: empty input");
  }
  double s = 0.0;
  double c = 0.0;
  for (double a : angles_rad) {
    s += std::sin(a);
    c += std::cos(a);
  }
  return wrap_phase(std::atan2(s, c));
}

}  // namespace lion::rf
