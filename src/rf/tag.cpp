#include "rf/tag.hpp"

#include "rf/constants.hpp"
#include "rf/rng.hpp"

namespace lion::rf {

Tag make_tag(std::uint32_t id) {
  Rng rng(0x7A6DEED5ULL + id * 0x9E3779B97F4A7C15ULL);
  Tag t;
  t.id = id;
  t.tag_offset_rad = rng.uniform(0.0, kTwoPi);
  t.backscatter_efficiency = rng.uniform(0.4, 0.6);
  return t;
}

}  // namespace lion::rf
