// Physical constants and UHF RFID channel plans.
#pragma once

#include <cstddef>
#include <vector>

namespace lion::rf {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Pi to double precision.
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Carrier frequency used throughout the paper's evaluation [Hz]
/// (ImpinJ R420 fixed at 920.625 MHz, Sec. V-A).
inline constexpr double kDefaultFrequencyHz = 920.625e6;

/// Wavelength for a carrier frequency [m].
constexpr double wavelength(double frequency_hz) {
  return kSpeedOfLight / frequency_hz;
}

/// Default wavelength (~32.6 cm; half-wavelength ~16 cm as the paper notes).
inline constexpr double kDefaultWavelength = wavelength(kDefaultFrequencyHz);

/// A regulatory channel plan (used when simulating frequency hopping).
struct ChannelPlan {
  double start_hz;    ///< first channel center
  double spacing_hz;  ///< channel separation
  std::size_t count;  ///< number of channels

  /// Center frequency of channel i (i < count).
  constexpr double channel_hz(std::size_t i) const {
    return start_hz + spacing_hz * static_cast<double>(i);
  }
};

/// FCC US plan: 50 channels, 902.75-927.25 MHz, 500 kHz spacing.
inline constexpr ChannelPlan kFccPlan{902.75e6, 500e3, 50};

/// ETSI EU lower band plan: 4 channels 865.7-867.5 MHz, 600 kHz spacing.
inline constexpr ChannelPlan kEtsiPlan{865.7e6, 600e3, 4};

/// China 920-925 MHz plan: 16 channels, 250 kHz spacing, from 920.625 MHz —
/// the paper's operating frequency is this plan's channel 0.
inline constexpr ChannelPlan kChinaPlan{920.625e6, 250e3, 16};

}  // namespace lion::rf
