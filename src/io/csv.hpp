// CSV interchange for phase-sample streams.
//
// Real deployments log reader output as CSV; this module reads and writes
// the library's canonical column set so the CLI (and user scripts) can run
// LION without touching C++:
//
//     x,y,z,phase[,rssi[,channel[,t]]]
//
// with positions in metres, phase in radians (wrapped or unwrapped — the
// preprocessing handles both), RSSI in dBm, channel as an integer index,
// and t in seconds. A header row naming the columns is accepted in any
// order; without a header the first four (or more) columns are taken in
// canonical order.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/reader.hpp"

namespace lion::io {

/// Parse a CSV stream of phase samples.
///
/// Skips blank lines and lines starting with '#'. Throws
/// std::invalid_argument on malformed rows (wrong column count,
/// non-numeric fields) with the line number in the message.
std::vector<sim::PhaseSample> read_samples_csv(std::istream& in);

/// Convenience: parse from a file path. Throws std::runtime_error when the
/// file cannot be opened.
std::vector<sim::PhaseSample> read_samples_csv_file(const std::string& path);

/// Write samples with the canonical header (x,y,z,phase,rssi,channel,t).
void write_samples_csv(std::ostream& out,
                       const std::vector<sim::PhaseSample>& samples);

/// Convenience: write to a file path. Throws std::runtime_error when the
/// file cannot be opened.
void write_samples_csv_file(const std::string& path,
                            const std::vector<sim::PhaseSample>& samples);

}  // namespace lion::io
