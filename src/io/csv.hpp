// CSV interchange for phase-sample streams.
//
// Real deployments log reader output as CSV; this module reads and writes
// the library's canonical column set so the CLI (and user scripts) can run
// LION without touching C++:
//
//     x,y,z,phase[,rssi[,channel[,t]]]
//
// with positions in metres, phase in radians (wrapped or unwrapped — the
// preprocessing handles both), RSSI in dBm, channel as an integer index,
// and t in seconds. A header row naming the columns is accepted in any
// order; without a header the first four (or more) columns are taken in
// canonical order.
//
// Two entry points share one row grammar:
//   - read_samples_csv(istream): whole-stream convenience, throws on the
//     first malformed row (scripts want loud failures);
//   - CsvStreamParser: incremental and *non-throwing* — one line in, one
//     status out. This is the parser the streaming service feeds network
//     bytes into, where a malformed row must become an error response,
//     never an exception unwinding a server thread.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/reader.hpp"

namespace lion::io {

/// Outcome of feeding one line to CsvStreamParser.
enum class CsvRowStatus {
  kSample,   ///< the line parsed into `sample`
  kHeader,   ///< the line was a column-naming header (consumed)
  kSkipped,  ///< blank line or '#' comment (ignored)
  kError,    ///< malformed; `error` carries the detail, stream continues
};

/// Incremental, non-throwing parser over the canonical CSV row grammar.
///
/// Layout state (header detection happens on the first content line) is
/// carried across calls, so a stream chunked at arbitrary line boundaries
/// parses identically to a whole-file read — the serve path's
/// stream-vs-batch conformance depends on this. After a kError row the
/// parser stays usable: layout (if already locked) is kept and the next
/// line is parsed normally.
class CsvStreamParser {
 public:
  struct Result {
    CsvRowStatus status = CsvRowStatus::kSkipped;
    sim::PhaseSample sample;  ///< valid when status == kSample
    std::string error;        ///< valid when status == kError
  };

  /// Parse one line (without its trailing newline; a trailing '\r' is
  /// tolerated). Never throws.
  Result push_line(std::string_view line);

  /// Lines seen so far (for error messages; counts every push_line call).
  std::size_t line_number() const { return line_no_; }

  /// Forget layout and line count (fresh stream).
  void reset();

 private:
  // Column order; -1 means "not present".
  struct Layout {
    int x = 0;
    int y = 1;
    int z = 2;
    int phase = 3;
    int rssi = 4;
    int channel = 5;
    int t = 6;
  };

  bool layout_known_ = false;
  Layout layout_;
  std::size_t line_no_ = 0;
};

/// Parse a CSV stream of phase samples.
///
/// Skips blank lines and lines starting with '#'. Throws
/// std::invalid_argument on malformed rows (wrong column count,
/// non-numeric fields) with the line number in the message.
std::vector<sim::PhaseSample> read_samples_csv(std::istream& in);

/// Convenience: parse from a file path. Throws std::runtime_error when the
/// file cannot be opened.
std::vector<sim::PhaseSample> read_samples_csv_file(const std::string& path);

/// Write samples with the canonical header (x,y,z,phase,rssi,channel,t).
void write_samples_csv(std::ostream& out,
                       const std::vector<sim::PhaseSample>& samples);

/// Convenience: write to a file path. Throws std::runtime_error when the
/// file cannot be opened.
void write_samples_csv_file(const std::string& path,
                            const std::vector<sim::PhaseSample>& samples);

}  // namespace lion::io
