#include "io/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lion::io {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(trim(field));
  return out;
}

double parse_double(const std::string& s, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("csv: non-numeric field '" + s + "' on line " +
                                std::to_string(line_no));
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Column order; -1 means "not present".
struct Layout {
  int x = 0;
  int y = 1;
  int z = 2;
  int phase = 3;
  int rssi = 4;
  int channel = 5;
  int t = 6;
  int max_index() const {
    return std::max({x, y, z, phase, rssi, channel, t});
  }
};

// Detect a header row and build the layout from it; returns nullopt-like
// flag via `has_header`.
Layout parse_header(const std::vector<std::string>& fields, bool& has_header) {
  Layout layout;
  layout.rssi = layout.channel = layout.t = -1;
  bool any_name = false;
  Layout named;
  named.x = named.y = named.z = named.phase = -1;
  named.rssi = named.channel = named.t = -1;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string f = lower(fields[i]);
    const int idx = static_cast<int>(i);
    if (f == "x") {
      named.x = idx;
      any_name = true;
    } else if (f == "y") {
      named.y = idx;
      any_name = true;
    } else if (f == "z") {
      named.z = idx;
      any_name = true;
    } else if (f == "phase" || f == "phase_rad") {
      named.phase = idx;
      any_name = true;
    } else if (f == "rssi" || f == "rssi_dbm") {
      named.rssi = idx;
      any_name = true;
    } else if (f == "channel") {
      named.channel = idx;
      any_name = true;
    } else if (f == "t" || f == "time" || f == "timestamp") {
      named.t = idx;
      any_name = true;
    }
  }
  if (!any_name) {
    has_header = false;
    // Positional: first four mandatory, extras in canonical order.
    Layout pos;
    pos.rssi = fields.size() > 4 ? 4 : -1;
    pos.channel = fields.size() > 5 ? 5 : -1;
    pos.t = fields.size() > 6 ? 6 : -1;
    return pos;
  }
  has_header = true;
  if (named.x < 0 || named.y < 0 || named.z < 0 || named.phase < 0) {
    throw std::invalid_argument(
        "csv: header must name at least x, y, z and phase");
  }
  return named;
}

}  // namespace

std::vector<sim::PhaseSample> read_samples_csv(std::istream& in) {
  std::vector<sim::PhaseSample> out;
  std::string line;
  std::size_t line_no = 0;
  bool layout_known = false;
  Layout layout;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto fields = split_fields(stripped);

    if (!layout_known) {
      bool has_header = false;
      layout = parse_header(fields, has_header);
      layout_known = true;
      if (has_header) continue;  // consume the header row
    }

    if (static_cast<int>(fields.size()) <= layout.phase ||
        static_cast<int>(fields.size()) <= layout.z) {
      throw std::invalid_argument("csv: too few columns on line " +
                                  std::to_string(line_no));
    }
    sim::PhaseSample s;
    s.position[0] = parse_double(fields[static_cast<std::size_t>(layout.x)],
                                 line_no);
    s.position[1] = parse_double(fields[static_cast<std::size_t>(layout.y)],
                                 line_no);
    s.position[2] = parse_double(fields[static_cast<std::size_t>(layout.z)],
                                 line_no);
    s.phase = parse_double(fields[static_cast<std::size_t>(layout.phase)],
                           line_no);
    if (layout.rssi >= 0 &&
        static_cast<int>(fields.size()) > layout.rssi) {
      s.rssi_dbm = parse_double(fields[static_cast<std::size_t>(layout.rssi)],
                                line_no);
    }
    if (layout.channel >= 0 &&
        static_cast<int>(fields.size()) > layout.channel) {
      s.channel = static_cast<std::uint32_t>(parse_double(
          fields[static_cast<std::size_t>(layout.channel)], line_no));
    }
    if (layout.t >= 0 && static_cast<int>(fields.size()) > layout.t) {
      s.t = parse_double(fields[static_cast<std::size_t>(layout.t)], line_no);
    }
    out.push_back(s);
  }
  return out;
}

std::vector<sim::PhaseSample> read_samples_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open '" + path + "'");
  return read_samples_csv(f);
}

void write_samples_csv(std::ostream& out,
                       const std::vector<sim::PhaseSample>& samples) {
  out << "x,y,z,phase,rssi,channel,t\n";
  for (const auto& s : samples) {
    out << s.position[0] << ',' << s.position[1] << ',' << s.position[2]
        << ',' << s.phase << ',' << s.rssi_dbm << ',' << s.channel << ','
        << s.t << '\n';
  }
}

void write_samples_csv_file(const std::string& path,
                            const std::vector<sim::PhaseSample>& samples) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open '" + path + "'");
  write_samples_csv(f, samples);
}

}  // namespace lion::io
