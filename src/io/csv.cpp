#include "io/csv.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lion::io {

namespace {

std::string trim(std::string_view s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return std::string(s.substr(a, b - a));
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(trim(field));
  return out;
}

// std::stod semantics (so "nan"/"inf"/hex floats keep parsing exactly as
// they always did), full-field consumption required, no exception escapes.
bool parse_double(const std::string& s, std::size_t line_no, double& out,
                  std::string& error) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing characters");
    out = v;
    return true;
  } catch (const std::exception&) {
    error = "csv: non-numeric field '" + s + "' on line " +
            std::to_string(line_no);
    return false;
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

void CsvStreamParser::reset() {
  layout_known_ = false;
  layout_ = Layout{};
  line_no_ = 0;
}

CsvStreamParser::Result CsvStreamParser::push_line(std::string_view line) {
  Result out;
  ++line_no_;
  const std::string stripped = trim(line);
  if (stripped.empty() || stripped[0] == '#') {
    out.status = CsvRowStatus::kSkipped;
    return out;
  }
  const auto fields = split_fields(stripped);

  if (!layout_known_) {
    // Header detection: any recognised column name makes this a header
    // row; a header must then name all four mandatory columns. A row with
    // no recognised names locks the positional layout and is itself data.
    bool any_name = false;
    Layout named;
    named.x = named.y = named.z = named.phase = -1;
    named.rssi = named.channel = named.t = -1;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const std::string f = lower(fields[i]);
      const int idx = static_cast<int>(i);
      if (f == "x") {
        named.x = idx;
        any_name = true;
      } else if (f == "y") {
        named.y = idx;
        any_name = true;
      } else if (f == "z") {
        named.z = idx;
        any_name = true;
      } else if (f == "phase" || f == "phase_rad") {
        named.phase = idx;
        any_name = true;
      } else if (f == "rssi" || f == "rssi_dbm") {
        named.rssi = idx;
        any_name = true;
      } else if (f == "channel") {
        named.channel = idx;
        any_name = true;
      } else if (f == "t" || f == "time" || f == "timestamp") {
        named.t = idx;
        any_name = true;
      }
    }
    if (any_name) {
      if (named.x < 0 || named.y < 0 || named.z < 0 || named.phase < 0) {
        out.status = CsvRowStatus::kError;
        out.error = "csv: header must name at least x, y, z and phase";
        return out;
      }
      layout_ = named;
      layout_known_ = true;
      out.status = CsvRowStatus::kHeader;
      return out;
    }
    // Positional: first four mandatory, extras in canonical order.
    Layout pos;
    pos.rssi = fields.size() > 4 ? 4 : -1;
    pos.channel = fields.size() > 5 ? 5 : -1;
    pos.t = fields.size() > 6 ? 6 : -1;
    layout_ = pos;
    layout_known_ = true;
  }

  // Every mandatory column must be in range: a named header may place x or
  // y above z/phase (e.g. "z,phase,x,y"), so checking only z and phase
  // would let a short row index out of bounds.
  const int max_required =
      std::max(std::max(layout_.x, layout_.y),
               std::max(layout_.z, layout_.phase));
  if (static_cast<int>(fields.size()) <= max_required) {
    out.status = CsvRowStatus::kError;
    out.error = "csv: too few columns on line " + std::to_string(line_no_);
    return out;
  }
  sim::PhaseSample s;
  auto parse_into = [&](int idx, double& dst) {
    double v = 0.0;
    if (!parse_double(fields[static_cast<std::size_t>(idx)], line_no_, v,
                      out.error)) {
      return false;
    }
    dst = v;
    return true;
  };
  double channel = 0.0;
  const bool parsed =
      parse_into(layout_.x, s.position[0]) &&
      parse_into(layout_.y, s.position[1]) &&
      parse_into(layout_.z, s.position[2]) &&
      parse_into(layout_.phase, s.phase) &&
      (layout_.rssi < 0 || static_cast<int>(fields.size()) <= layout_.rssi ||
       parse_into(layout_.rssi, s.rssi_dbm)) &&
      (layout_.channel < 0 ||
       static_cast<int>(fields.size()) <= layout_.channel ||
       parse_into(layout_.channel, channel)) &&
      (layout_.t < 0 || static_cast<int>(fields.size()) <= layout_.t ||
       parse_into(layout_.t, s.t));
  if (!parsed) {
    out.status = CsvRowStatus::kError;
    return out;
  }
  if (layout_.channel >= 0 &&
      static_cast<int>(fields.size()) > layout_.channel) {
    s.channel = static_cast<std::uint32_t>(channel);
  }
  out.status = CsvRowStatus::kSample;
  out.sample = s;
  return out;
}

std::vector<sim::PhaseSample> read_samples_csv(std::istream& in) {
  std::vector<sim::PhaseSample> out;
  CsvStreamParser parser;
  std::string line;
  while (std::getline(in, line)) {
    const auto row = parser.push_line(line);
    switch (row.status) {
      case CsvRowStatus::kSample:
        out.push_back(row.sample);
        break;
      case CsvRowStatus::kError:
        throw std::invalid_argument(row.error);
      case CsvRowStatus::kHeader:
      case CsvRowStatus::kSkipped:
        break;
    }
  }
  return out;
}

std::vector<sim::PhaseSample> read_samples_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open '" + path + "'");
  return read_samples_csv(f);
}

void write_samples_csv(std::ostream& out,
                       const std::vector<sim::PhaseSample>& samples) {
  out << "x,y,z,phase,rssi,channel,t\n";
  for (const auto& s : samples) {
    out << s.position[0] << ',' << s.position[1] << ',' << s.position[2]
        << ',' << s.phase << ',' << s.rssi_dbm << ',' << s.channel << ','
        << s.t << '\n';
  }
}

void write_samples_csv_file(const std::string& path,
                            const std::vector<sim::PhaseSample>& samples) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open '" + path + "'");
  write_samples_csv(f, samples);
}

}  // namespace lion::io
