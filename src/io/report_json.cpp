#include "io/report_json.hpp"

#include <cstdio>

namespace lion::io {

namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

void append_vec(std::string& out, const linalg::Vec3& v) {
  out.push_back('[');
  append_num(out, v[0]);
  out.push_back(',');
  append_num(out, v[1]);
  out.push_back(',');
  append_num(out, v[2]);
  out.push_back(']');
}

void append_field(std::string& out, const char* key, std::size_t v) {
  out.append(key);
  out.append(std::to_string(v));
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string report_json(const core::CalibrationReport& report) {
  const auto& d = report.diagnostics;
  std::string out = "{";
  out += "\"status\":\"";
  out += core::calibration_status_name(report.status);
  out += "\",\"estimated_center\":";
  append_vec(out, report.center.estimated_center);
  out += ",\"displacement\":";
  append_vec(out, report.center.displacement);
  out += ",\"phase_offset\":";
  append_num(out, report.phase_offset);
  append_field(out, ",\"sanitize\":{\"input\":", d.sanitize.input);
  append_field(out, ",\"kept\":", d.sanitize.kept);
  append_field(out, ",\"dropped_nonfinite\":", d.sanitize.dropped_nonfinite);
  append_field(out, ",\"dropped_duplicate\":", d.sanitize.dropped_duplicate);
  append_field(out, ",\"reordered\":", d.sanitize.reordered);
  append_field(out, ",\"rewrapped\":", d.sanitize.rewrapped);
  out += "}";
  append_field(out, ",\"profile_points\":", d.profile_points);
  out += ",\"condition\":";
  append_num(out, d.condition);
  out += ",\"inlier_fraction\":";
  append_num(out, d.inlier_fraction);
  out += ",\"mean_residual\":";
  append_num(out, d.mean_residual);
  out += ",\"rms_residual\":";
  append_num(out, d.rms_residual);
  out += ",\"position_sigma\":";
  append_num(out, d.position_sigma);
  out += ",\"message\":\"";
  out += json_escape(d.message);
  out += "\"}";
  return out;
}

}  // namespace lion::io
