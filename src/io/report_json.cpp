#include "io/report_json.hpp"

#include "obs/json.hpp"

namespace lion::io {

namespace {

// Shared with the obs layer so reports and metrics snapshots agree on the
// %.17g convention, and non-finite doubles serialize as null instead of
// invalid bare `nan`/`inf` tokens.
void append_num(std::string& out, double v) {
  obs::append_json_number(out, v);
}

void append_vec(std::string& out, const linalg::Vec3& v) {
  out.push_back('[');
  append_num(out, v[0]);
  out.push_back(',');
  append_num(out, v[1]);
  out.push_back(',');
  append_num(out, v[2]);
  out.push_back(']');
}

void append_field(std::string& out, const char* key, std::size_t v) {
  out.append(key);
  out.append(std::to_string(v));
}

}  // namespace

std::string json_escape(const std::string& s) { return obs::json_escape(s); }

std::string report_json(const core::CalibrationReport& report) {
  const auto& d = report.diagnostics;
  std::string out = "{";
  out += "\"status\":\"";
  out += core::calibration_status_name(report.status);
  out += "\",\"estimated_center\":";
  append_vec(out, report.center.estimated_center);
  out += ",\"displacement\":";
  append_vec(out, report.center.displacement);
  out += ",\"phase_offset\":";
  append_num(out, report.phase_offset);
  append_field(out, ",\"sanitize\":{\"input\":", d.sanitize.input);
  append_field(out, ",\"kept\":", d.sanitize.kept);
  append_field(out, ",\"dropped_nonfinite\":", d.sanitize.dropped_nonfinite);
  append_field(out, ",\"dropped_duplicate\":", d.sanitize.dropped_duplicate);
  append_field(out, ",\"reordered\":", d.sanitize.reordered);
  append_field(out, ",\"rewrapped\":", d.sanitize.rewrapped);
  out += "}";
  append_field(out, ",\"profile_points\":", d.profile_points);
  out += ",\"condition\":";
  append_num(out, d.condition);
  out += ",\"inlier_fraction\":";
  append_num(out, d.inlier_fraction);
  out += ",\"mean_residual\":";
  append_num(out, d.mean_residual);
  out += ",\"rms_residual\":";
  append_num(out, d.rms_residual);
  out += ",\"position_sigma\":";
  append_num(out, d.position_sigma);
  out += ",\"message\":\"";
  out += json_escape(d.message);
  out += "\"}";
  return out;
}

}  // namespace lion::io
