// Deterministic JSON serialization of calibration reports.
//
// Two consumers depend on the *exact* byte output:
//   - the golden regression fixtures (tests/data/*.json) compare a fresh
//     report against a checked-in serialization token-by-token;
//   - the batch-engine determinism tests compare the serialized reports of
//     a 1-thread and an N-thread run for byte equality.
// So the format is fixed: keys in declaration order, doubles printed with
// %.17g (round-trip exact for IEEE binary64), no locale dependence, no
// whitespace variation. Timing fields are intentionally absent — they are
// measurements, not results.
#pragma once

#include <string>

#include "core/calibration.hpp"

namespace lion::io {

/// Serialize a report as a single-line JSON object.
std::string report_json(const core::CalibrationReport& report);

/// JSON string escaping for the diagnostics message (quotes, backslashes,
/// control characters).
std::string json_escape(const std::string& s);

}  // namespace lion::io
