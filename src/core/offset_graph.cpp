#include "core/offset_graph.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rf/phase_model.hpp"

namespace lion::core {

namespace {

bool present(double v) { return v != kMissingOffset; }

// Connectivity of the bipartite measurement graph via BFS over antennas
// and tags.
bool graph_connected(const linalg::Matrix& m) {
  const std::size_t na = m.rows();
  const std::size_t nt = m.cols();
  std::vector<char> seen_a(na, 0);
  std::vector<char> seen_t(nt, 0);
  std::vector<std::size_t> queue_a{0};
  seen_a[0] = 1;
  std::vector<std::size_t> queue_t;
  while (!queue_a.empty() || !queue_t.empty()) {
    if (!queue_a.empty()) {
      const std::size_t a = queue_a.back();
      queue_a.pop_back();
      for (std::size_t t = 0; t < nt; ++t) {
        if (present(m(a, t)) && !seen_t[t]) {
          seen_t[t] = 1;
          queue_t.push_back(t);
        }
      }
    } else {
      const std::size_t t = queue_t.back();
      queue_t.pop_back();
      for (std::size_t a = 0; a < na; ++a) {
        if (present(m(a, t)) && !seen_a[a]) {
          seen_a[a] = 1;
          queue_a.push_back(a);
        }
      }
    }
  }
  for (char s : seen_a) {
    if (!s) return false;
  }
  for (char s : seen_t) {
    if (!s) return false;
  }
  return true;
}

}  // namespace

OffsetDecomposition decompose_offsets(const linalg::Matrix& measured,
                                      std::size_t max_iterations,
                                      double tolerance) {
  const std::size_t na = measured.rows();
  const std::size_t nt = measured.cols();
  if (na == 0 || nt == 0) {
    throw std::invalid_argument("decompose_offsets: empty matrix");
  }
  for (std::size_t a = 0; a < na; ++a) {
    bool any = false;
    for (std::size_t t = 0; t < nt; ++t) any = any || present(measured(a, t));
    if (!any) {
      throw std::invalid_argument(
          "decompose_offsets: an antenna has no calibrated pair");
    }
  }
  for (std::size_t t = 0; t < nt; ++t) {
    bool any = false;
    for (std::size_t a = 0; a < na; ++a) any = any || present(measured(a, t));
    if (!any) {
      throw std::invalid_argument(
          "decompose_offsets: a tag has no calibrated pair");
    }
  }
  if (!graph_connected(measured)) {
    throw std::invalid_argument(
        "decompose_offsets: measurement graph is disconnected — the gauges "
        "of the components cannot be reconciled");
  }

  OffsetDecomposition out;
  out.antenna_offsets.assign(na, 0.0);
  out.tag_offsets.assign(nt, 0.0);

  // Alternate circular means: given taus, each rho is the circular mean of
  // Theta[a][t] - tau_t over measured t; symmetrically for taus, then
  // re-anchor the gauge at tau_0 = 0.
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double max_change = 0.0;

    for (std::size_t a = 0; a < na; ++a) {
      std::vector<double> estimates;
      for (std::size_t t = 0; t < nt; ++t) {
        if (!present(measured(a, t))) continue;
        estimates.push_back(
            rf::wrap_phase(measured(a, t) - out.tag_offsets[t]));
      }
      const double next = rf::circular_mean(estimates);
      max_change = std::max(
          max_change, rf::circular_distance(next, out.antenna_offsets[a]));
      out.antenna_offsets[a] = next;
    }

    for (std::size_t t = 0; t < nt; ++t) {
      std::vector<double> estimates;
      for (std::size_t a = 0; a < na; ++a) {
        if (!present(measured(a, t))) continue;
        estimates.push_back(
            rf::wrap_phase(measured(a, t) - out.antenna_offsets[a]));
      }
      const double next = rf::circular_mean(estimates);
      max_change = std::max(max_change,
                            rf::circular_distance(next, out.tag_offsets[t]));
      out.tag_offsets[t] = next;
    }

    // Re-anchor the gauge: tau_0 = 0.
    const double gauge = out.tag_offsets[0];
    for (double& tau : out.tag_offsets) tau = rf::wrap_phase(tau - gauge);
    for (double& rho : out.antenna_offsets) {
      rho = rf::wrap_phase(rho + gauge);
    }

    out.iterations = iter + 1;
    if (max_change < tolerance) break;
  }

  // Residual.
  double ss = 0.0;
  std::size_t count = 0;
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t t = 0; t < nt; ++t) {
      if (!present(measured(a, t))) continue;
      const double r = rf::circular_distance(
          measured(a, t), predicted_pair_offset(out, a, t));
      ss += r * r;
      ++count;
    }
  }
  out.rms_residual = count ? std::sqrt(ss / static_cast<double>(count)) : 0.0;
  return out;
}

double predicted_pair_offset(const OffsetDecomposition& d, std::size_t antenna,
                             std::size_t tag) {
  return rf::wrap_phase(d.antenna_offsets.at(antenna) + d.tag_offsets.at(tag));
}

}  // namespace lion::core
