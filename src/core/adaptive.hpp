// Adaptive parameter selection (Sec. IV-C1, evaluated in Sec. V-E).
//
// The scanning range and pairing interval materially change accuracy: too
// small a range gives near-parallel radical lines (plane-wave regime), too
// large a range drags in noisy off-beam samples; small intervals make the
// phase-difference term noise-dominated. The paper's cue is the *mean WLS
// residual*: with Gaussian reweighting it sits near zero exactly when the
// data is clean, so LION sweeps candidate (range, interval) pairs and
// averages the estimates whose mean residual is closest to zero.
#pragma once

#include <cstddef>
#include <vector>

#include "core/localizer.hpp"
#include "signal/profile.hpp"

namespace lion::core {

/// One evaluated parameter combination.
struct AdaptiveCandidate {
  double range = 0.0;      ///< scanning range [m]
  double interval = 0.0;   ///< pairing interval [m]
  LocalizationResult result;
  bool usable = false;     ///< false when this combination failed to solve
};

/// Adaptive sweep configuration.
struct AdaptiveConfig {
  /// Candidate scanning ranges [m] (paper sweeps 0.6-1.1 m).
  std::vector<double> ranges{0.6, 0.7, 0.8, 0.9, 1.0, 1.1};
  /// Candidate pairing intervals [m] (paper sweeps 0.1-0.35 m).
  std::vector<double> intervals{0.10, 0.15, 0.20, 0.25, 0.30, 0.35};
  /// Center of the scanning-range window along x [m].
  double range_center_x = 0.0;
  /// Fraction of candidates (by |mean residual|, ascending) averaged into
  /// the final estimate; at least one candidate is always kept.
  double keep_fraction = 0.25;
  /// Minimum equations a candidate must have to count. A barely-determined
  /// system fits its few equations exactly — near-zero residual, garbage
  /// estimate — and would otherwise win the residual contest.
  std::size_t min_equations = 12;
  /// Maximum tolerated condition estimate of a candidate's linear system;
  /// windows whose geometry barely constrains a direction (e.g. a slice so
  /// narrow that only cross-line pairs survive) are rejected.
  double max_condition = 1e5;
  /// Base localizer settings (dimension, method, hints). pair_interval is
  /// overridden per candidate.
  LocalizerConfig base{};
};

/// Outcome of an adaptive sweep.
struct AdaptiveResult {
  Vec3 position{};                  ///< average of the selected estimates
  double reference_distance = 0.0;  ///< average d_r of selected estimates
  std::vector<AdaptiveCandidate> selected;    ///< candidates averaged
  std::vector<AdaptiveCandidate> candidates;  ///< every evaluated combination
  double best_range = 0.0;     ///< range of the |mean-residual|-best candidate
  double best_interval = 0.0;  ///< interval of that candidate
};

/// Run the adaptive sweep. Throws std::invalid_argument when no candidate
/// combination yields a solvable system.
AdaptiveResult locate_adaptive(const signal::PhaseProfile& profile,
                               const AdaptiveConfig& config);

/// The localizer configuration locate_adaptive uses for one (range,
/// interval) cell over the windowed profile `windowed` — shared with the
/// incremental calibrate path so both evaluate identical systems.
LocalizerConfig adaptive_cell_config(const AdaptiveConfig& config,
                                     double interval,
                                     const signal::PhaseProfile& windowed);

/// locate_adaptive's per-candidate acceptance gate (enough equations,
/// tolerable conditioning, finite position).
bool adaptive_candidate_usable(const LocalizationResult& result,
                               const AdaptiveConfig& config);

/// The ranking/selection/averaging tail of locate_adaptive over an
/// already-evaluated candidate list, exposed so the incremental calibrate
/// path reproduces the exact selection order and averaging arithmetic.
/// Throws std::invalid_argument when no candidate is usable.
AdaptiveResult finalize_adaptive_sweep(std::vector<AdaptiveCandidate> candidates,
                                       const AdaptiveConfig& config);

}  // namespace lion::core
