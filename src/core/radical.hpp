// Radical-line / intersection-circle equation construction (Eq. 5-9).
//
// For a pair of scan positions (i, j) with unwrapped phases theta_i,
// theta_j, express distances as d = d_r + delta_d (Eq. 6) with
// delta_d = lambda/(4*pi) * (theta - theta_ref), and subtract the two
// circle/sphere equations. In the scan's local frame with coordinates q
// this yields one *linear* equation in the unknowns [a; d_r] (a = antenna
// coordinates in the frame):
//
//   2 (q_i - q_j) . a + 2 (dd_i - dd_j) d_r
//       = |q_i|^2 - |q_j|^2 - dd_i^2 + dd_j^2.
//
// Components of the antenna position orthogonal to the frame cancel in the
// subtraction — that is the lower-dimension issue, handled downstream.
#pragma once

#include <cstddef>
#include <vector>

#include "core/frame.hpp"
#include "core/pairing.hpp"
#include "linalg/matrix.hpp"
#include "signal/profile.hpp"

namespace lion::core {

/// The assembled linear system A x = k with x = [a_1..a_rank, d_r].
struct LinearSystem {
  linalg::Matrix a;           ///< N x (rank + 1) coefficient matrix
  std::vector<double> k;      ///< right-hand side
  std::size_t reference_index = 0;  ///< profile index of the reference
  std::vector<double> delta_d;      ///< per-profile-point distance deltas
};

/// Build the system for the given pairs. `reference_index` selects the
/// reference sample whose distance becomes the unknown d_r. Throws
/// std::invalid_argument on an out-of-range reference or empty pairs.
LinearSystem build_system(const signal::PhaseProfile& profile,
                          const TrajectoryFrame& frame,
                          const std::vector<IndexPair>& pairs,
                          std::size_t reference_index, double wavelength);

}  // namespace lion::core
