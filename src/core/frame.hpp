// Trajectory frame analysis.
//
// The linear model can only resolve antenna coordinates along directions
// the tag actually moved (Sec. III-C): subtracting two circle equations
// cancels any component orthogonal to the scan. We therefore express the
// problem in the scan's own principal frame — centroid + orthonormal axes
// from the position covariance — and flag the affine rank so the localizer
// knows whether a perpendicular coordinate must be recovered from d_r.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.hpp"
#include "signal/profile.hpp"

namespace lion::core {

using linalg::Vec2;
using linalg::Vec3;

/// Principal frame of a set of scan positions.
struct TrajectoryFrame {
  Vec3 centroid{};           ///< mean position
  std::vector<Vec3> axes;    ///< orthonormal principal directions, size rank
  std::vector<double> spread;///< RMS extent along each axis [m]
  std::size_t rank = 0;      ///< affine rank of the scan

  /// The unique direction orthogonal to the scan inside the target space.
  /// Only meaningful when rank == target_dim - 1; see analyze_frame.
  Vec3 perpendicular{};
  bool has_perpendicular = false;

  /// Local (rank-dimensional) coordinates of a point: projections of
  /// (p - centroid) onto each axis.
  std::vector<double> to_local(const Vec3& p) const;

  /// Reconstruct a global point from local coordinates plus a perpendicular
  /// offset (0 when has_perpendicular is false).
  Vec3 from_local(const std::vector<double>& local, double perp = 0.0) const;
};

/// Analyze scan positions for localization in a `target_dim`-dimensional
/// space (2 or 3).
///
/// For target_dim == 2 the z coordinates are ignored (planar problem) and
/// the perpendicular, when rank == 1, is the in-plane normal of the scan
/// line. For target_dim == 3 the perpendicular, when rank == 2, is the scan
/// plane's normal. Throws std::invalid_argument for target_dim not in
/// {2, 3} or fewer than 2 positions.
///
/// `rank_tol` is the relative eigenvalue threshold deciding whether a
/// direction counts as "moved along" (default treats sub-millimetre RMS
/// wobble on a metre-scale scan as noise).
TrajectoryFrame analyze_frame(const signal::PhaseProfile& profile,
                              std::size_t target_dim, double rank_tol = 1e-6);

}  // namespace lion::core
