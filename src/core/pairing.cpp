#include "core/pairing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "signal/profile.hpp"

namespace lion::core {

using linalg::Vec3;

std::vector<IndexPair> interval_pairs(const signal::PhaseProfile& profile,
                                      double interval, double tolerance,
                                      std::size_t stride) {
  if (interval <= 0.0) {
    throw std::invalid_argument("interval_pairs: interval must be positive");
  }
  if (stride == 0) stride = 1;
  const auto arcs = signal::arc_lengths(profile);
  std::vector<IndexPair> pairs;
  std::size_t j = 0;
  for (std::size_t i = 0; i < profile.size(); i += stride) {
    const double target = arcs[i] + interval;
    if (j < i + 1) j = i + 1;
    while (j < profile.size() && arcs[j] < target) ++j;
    if (j >= profile.size()) break;
    if (arcs[j] - target <= tolerance) pairs.emplace_back(i, j);
  }
  return pairs;
}

std::vector<IndexPair> ladder_pairs(const signal::PhaseProfile& profile,
                                    double interval, double tolerance,
                                    std::size_t stride) {
  if (interval <= 0.0) {
    throw std::invalid_argument("ladder_pairs: interval must be positive");
  }
  if (stride == 0) stride = 1;
  const auto arcs = signal::arc_lengths(profile);
  if (arcs.empty()) return {};
  const double total = arcs.back();
  std::vector<IndexPair> pairs;
  for (std::size_t i = 0; i < profile.size(); i += stride) {
    for (double offset = interval; arcs[i] + offset <= total + tolerance;
         offset *= 2.0) {
      const double target = arcs[i] + offset;
      const auto it = std::lower_bound(arcs.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                       arcs.end(), target);
      if (it == arcs.end()) break;
      const auto j = static_cast<std::size_t>(std::distance(arcs.begin(), it));
      if (*it - target <= tolerance && j != i) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

std::vector<IndexPair> spread_pairs(const signal::PhaseProfile& profile,
                                    double min_separation,
                                    std::size_t max_pairs,
                                    std::size_t stride) {
  if (stride == 0) stride = 1;
  const double min_sep2 = min_separation * min_separation;
  std::vector<IndexPair> pairs;
  for (std::size_t i = 0; i < profile.size() && pairs.size() < max_pairs;
       i += stride) {
    for (std::size_t j = i + stride;
         j < profile.size() && pairs.size() < max_pairs; j += stride) {
      if (linalg::squared_distance(profile[i].position, profile[j].position) >=
          min_sep2) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

namespace {

// Index of the profile point nearest to `target`, or npos when nothing is
// within tol.
std::size_t find_near(const signal::PhaseProfile& profile, const Vec3& target,
                      double tol) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  double best_d2 = tol * tol;
  for (std::size_t k = 0; k < profile.size(); ++k) {
    const double d2 = linalg::squared_distance(profile[k].position, target);
    if (d2 <= best_d2) {
      best_d2 = d2;
      best = k;
    }
  }
  return best;
}

}  // namespace

std::vector<IndexPair> three_line_pairs(const signal::PhaseProfile& profile,
                                        const sim::ThreeLineRig& rig,
                                        double interval,
                                        double match_tolerance) {
  if (interval <= 0.0) {
    throw std::invalid_argument("three_line_pairs: interval must be positive");
  }
  constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
  std::vector<IndexPair> pairs;
  // Anchor x positions stepped by interval across the rig span.
  for (double x = rig.x_min; x <= rig.x_max + 1e-9; x += interval) {
    const std::size_t p1 = find_near(profile, rig.point_on_line(0, x),
                                     match_tolerance);
    if (p1 == kNpos) continue;
    // Along-line pair for the x coordinate.
    if (x + interval <= rig.x_max + 1e-9) {
      const std::size_t p1_next = find_near(
          profile, rig.point_on_line(0, x + interval), match_tolerance);
      if (p1_next != kNpos && p1_next != p1) pairs.emplace_back(p1, p1_next);
    }
    // Cross-line pair L1-L3 for the y coordinate.
    const std::size_t p3 = find_near(profile, rig.point_on_line(2, x),
                                     match_tolerance);
    if (p3 != kNpos && p3 != p1) pairs.emplace_back(p1, p3);
    // Cross-line pair L1-L2 for the z coordinate.
    const std::size_t p2 = find_near(profile, rig.point_on_line(1, x),
                                     match_tolerance);
    if (p2 != kNpos && p2 != p1) pairs.emplace_back(p1, p2);
  }
  return pairs;
}

signal::PhaseProfile restrict_to_x_range(const signal::PhaseProfile& profile,
                                         double center_x, double range) {
  if (range <= 0.0) {
    throw std::invalid_argument("restrict_to_x_range: range must be positive");
  }
  signal::PhaseProfile out;
  out.reserve(profile.size());
  const double lo = center_x - 0.5 * range;
  const double hi = center_x + 0.5 * range;
  for (const auto& p : profile) {
    if (p.position[0] >= lo && p.position[0] <= hi) out.push_back(p);
  }
  return out;
}

}  // namespace lion::core
