#include "core/tracker.hpp"

#include <stdexcept>

namespace lion::core {

ConveyorTracker::ConveyorTracker(TrackerConfig config)
    : config_(std::move(config)) {
  if (config_.belt_direction.norm() == 0.0) {
    throw std::invalid_argument("ConveyorTracker: zero belt direction");
  }
  config_.belt_direction = config_.belt_direction.normalized();
  if (config_.belt_speed <= 0.0) {
    throw std::invalid_argument("ConveyorTracker: speed must be positive");
  }
  if (config_.window < 8) {
    throw std::invalid_argument("ConveyorTracker: window too small");
  }
  if (config_.hop == 0) {
    throw std::invalid_argument("ConveyorTracker: hop must be positive");
  }
}

TrackFix ConveyorTracker::solve_window() const {
  TrackFix fix;
  const double t0 = buffer_.front().t;
  fix.t = buffer_.back().t;

  // Window samples -> preprocessed profile. The samples' `position` field
  // is unused here (the tag's absolute position is the unknown); instead
  // the known displacement since t0 is encoded for preprocessing via a
  // virtual position so smoothing/unwrapping see the true geometry order.
  std::vector<sim::PhaseSample> window_samples(buffer_.begin(), buffer_.end());
  for (auto& s : window_samples) {
    s.position = config_.belt_speed * (s.t - t0) * config_.belt_direction;
  }
  const auto profile =
      signal::preprocess(window_samples, config_.preprocess);
  if (profile.size() < 8) return fix;  // invalid

  std::vector<TagScanPoint> scan;
  scan.reserve(profile.size());
  for (const auto& pt : profile) {
    scan.push_back({pt.position, pt.phase});
  }
  try {
    const auto result = locate_tag_start(config_.antenna_phase_center, scan,
                                         config_.localizer);
    fix.start = result.position;
    fix.position = result.position + config_.belt_speed * (fix.t - t0) *
                                         config_.belt_direction;
    fix.sigma = result.position_sigma;
    fix.mean_residual = result.mean_residual;
    fix.valid = true;
  } catch (const std::exception&) {
    fix.valid = false;
  }
  return fix;
}

std::optional<TrackFix> ConveyorTracker::push(const sim::PhaseSample& sample) {
  buffer_.push_back(sample);
  if (buffer_.size() < config_.window) return std::nullopt;

  TrackFix fix = solve_window();
  fixes_.push_back(fix);
  for (std::size_t i = 0; i < config_.hop && !buffer_.empty(); ++i) {
    buffer_.pop_front();
  }
  return fix;
}

}  // namespace lion::core
