// The LION linear localizer (Sec. III + IV-B).
//
// Given a preprocessed phase profile along a *known* trajectory, estimate
// the position of the (static) signal source — in the paper's primary use,
// the antenna's electrical phase center — by solving the radical-line /
// intersection-circle linear system with (weighted) least squares, then
// recovering any trajectory-orthogonal coordinate from the reference
// distance d_r (Observation 2).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/frame.hpp"
#include "core/pairing.hpp"
#include "core/radical.hpp"
#include "core/ransac.hpp"
#include "linalg/lstsq.hpp"
#include "rf/constants.hpp"
#include "signal/profile.hpp"

namespace lion::core {

/// How the linear system is solved (the paper's LS / WLS knob, Sec. V-D,
/// plus the robust variants for contaminated field streams).
enum class SolveMethod {
  kLeastSquares,          ///< plain normal-equation LS (Eq. 13)
  kWeightedLeastSquares,  ///< one Gaussian-residual reweight pass (Eq. 14-16)
  kIterativeReweighted,   ///< reweight until the estimate stabilizes
  kHuberIrls,             ///< IRLS with Huber weights (MAD-scaled)
  kTukeyIrls,             ///< IRLS with Tukey biweight (hard rejection)
  kRansac,                ///< LMedS consensus sampling + Huber refit
};

const char* solve_method_name(SolveMethod m);

/// Localizer configuration.
struct LocalizerConfig {
  /// Spatial dimension of the answer: 2 (planar) or 3.
  std::size_t target_dim = 2;

  /// Carrier wavelength [m].
  double wavelength = rf::kDefaultWavelength;

  SolveMethod method = SolveMethod::kWeightedLeastSquares;

  /// Arc distance between paired samples (the scanning interval x_o).
  double pair_interval = 0.2;

  /// Tolerance on the pair interval (stream gaps).
  double pair_tolerance = 0.02;

  /// Subsampling stride over anchor samples when forming pairs.
  std::size_t pair_stride = 1;

  /// Reference sample for d_r; defaults to the middle of the profile.
  std::optional<std::size_t> reference_index;

  /// A point on the same side of the scan as the true target, used to pick
  /// the sign when a perpendicular coordinate is recovered from d_r
  /// ("filter the error one based on the actual deployment", Sec. III-C).
  std::optional<Vec3> side_hint;

  /// Convergence control for the IRLS-family methods. `irls.loss` is
  /// implied by the method for kHuberIrls / kTukeyIrls.
  linalg::IrlsOptions irls{};

  /// Consensus-sampling control for kRansac.
  RansacOptions ransac{};

  /// Optional non-owning solver scratch for the RANSAC / IRLS-family
  /// methods: when set, their per-solve storage comes from this workspace
  /// instead of the heap (results are bit-identical either way). The
  /// workspace must outlive the localizer and must not be shared across
  /// threads; the batch engine wires one per pool worker.
  linalg::SolverWorkspace* workspace = nullptr;
};

/// Localization outcome.
struct LocalizationResult {
  Vec3 position{};                 ///< estimated target position
  double reference_distance = 0.0; ///< estimated d_r [m]
  double mean_residual = 0.0;      ///< mean equation residual (adaptive cue)
  double rms_residual = 0.0;       ///< RMS equation residual
  std::size_t equations = 0;       ///< rows in the linear system
  std::size_t trajectory_rank = 0; ///< affine rank of the scan
  bool perpendicular_recovered = false;  ///< lower-dimension path taken
  std::size_t solver_iterations = 0;     ///< reweighting rounds run
  /// Fraction of equations in the consensus set (1.0 for the non-RANSAC
  /// methods, which use every row).
  double inlier_fraction = 1.0;
  /// Condition estimate of the linear system (max/min |R_ii| of its QR).
  /// Large values mean the scan geometry barely constrains some direction
  /// and the estimate should not be trusted.
  double condition = 1.0;

  /// One-sigma uncertainty of each solved unknown [frame coords..., d_r],
  /// from the residual-scaled normal-equation covariance
  /// sigma^2 (A^T A)^{-1} — the GDOP of this scan geometry. Lets callers
  /// report error bars and reject weakly-constrained axes. Same length as
  /// trajectory_rank + 1.
  std::vector<double> sigma;

  /// Scalar summary: the largest entry of `sigma` over the position
  /// coordinates (excludes d_r). Zero for a noise-free exact fit.
  double position_sigma = 0.0;

  // Warm-start capture (not serialized into reports): consensus-solver
  // internals the incremental calibrate path re-seeds and gates from.
  /// False when the kRansac solve took the full-row robust fallback
  /// (true for every non-RANSAC method, which trivially use all rows).
  bool consensus = true;
  /// LMedS robust scale of the winning consensus candidate (0 outside the
  /// kRansac consensus branch) — the robust-scale drift gate's reference.
  double consensus_scale = 0.0;
  /// Inlier threshold the consensus mask was cut at (0 outside the
  /// kRansac consensus branch).
  double consensus_threshold = 0.0;
};

/// A caller-provided solve of a prepared system, handed to the shared
/// result-assembly path. Mirrors exactly what the built-in solve switch in
/// locate_with_pairs produces, so assemble_result() yields bit-identical
/// results for an identical solve.
struct SolveOutcome {
  linalg::LstsqResult solution;
  double inlier_fraction = 1.0;
  /// True when `config().workspace` still caches exactly this system (its
  /// product-cache gram then backs the GDOP covariance, bit-exact with
  /// sys.a.gram()).
  bool ws_holds_system = false;
  bool consensus = true;
  double consensus_scale = 0.0;
  double consensus_threshold = 0.0;
};

/// The LION localizer.
class LinearLocalizer {
 public:
  explicit LinearLocalizer(LocalizerConfig config);

  /// Localize from a profile, generating ladder pairs per the config (arc
  /// offsets pair_interval, 2x, 4x, ... so that multi-segment scans keep
  /// nonzero coefficients on every coordinate).
  ///
  /// Throws std::invalid_argument when the profile is too small, produces
  /// no pairs, or the scan's rank is more than one short of target_dim
  /// (e.g. a single straight line cannot give a 3D fix, Sec. III-C2).
  LocalizationResult locate(const signal::PhaseProfile& profile) const;

  /// Localize with an explicit pair set (e.g. three_line_pairs).
  LocalizationResult locate_with_pairs(
      const signal::PhaseProfile& profile,
      const std::vector<IndexPair>& pairs) const;

  /// Build the exact linear system locate_with_pairs would solve — same
  /// validation, frame analysis, reference choice, and build_system call,
  /// with the same exceptions — without solving it. Exposed for the
  /// incremental calibrate path, which substitutes its own warm solve.
  LinearSystem prepare_system(const signal::PhaseProfile& profile,
                              const std::vector<IndexPair>& pairs,
                              TrajectoryFrame& frame) const;

  /// The shared post-solve tail of locate_with_pairs: condition estimate,
  /// GDOP covariance, and the perpendicular-coordinate recovery, assembled
  /// from a caller-provided solve of a system built by prepare_system.
  /// For a bit-identical solve outcome the result is bit-identical to
  /// locate_with_pairs on the same inputs.
  LocalizationResult assemble_result(const signal::PhaseProfile& profile,
                                     const TrajectoryFrame& frame,
                                     const LinearSystem& sys,
                                     std::size_t equations,
                                     const SolveOutcome& outcome) const;

  const LocalizerConfig& config() const { return config_; }

 private:
  LocalizerConfig config_;
};

}  // namespace lion::core
