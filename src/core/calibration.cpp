#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "core/frame.hpp"
#include "obs/obs.hpp"
#include "rf/phase_model.hpp"

namespace lion::core {

CenterCalibration calibrate_phase_center(const signal::PhaseProfile& profile,
                                         const Vec3& physical_center,
                                         AdaptiveConfig config) {
  config.base.target_dim = 3;
  // The experimenter's own measurement is the natural side hint: the true
  // phase center is centimetres away, never on the other side of the rig.
  if (!config.base.side_hint) config.base.side_hint = physical_center;

  CenterCalibration out;
  out.details = locate_adaptive(profile, config);
  out.estimated_center = out.details.position;
  out.displacement = out.estimated_center - physical_center;
  return out;
}

double calibrate_phase_offset(const std::vector<sim::PhaseSample>& samples,
                              const Vec3& phase_center, double wavelength) {
  if (samples.empty()) {
    throw std::invalid_argument("calibrate_phase_offset: no samples");
  }
  LION_OBS_SPAN(obs::Stage::kOffset);
  std::vector<double> diffs;
  diffs.reserve(samples.size());
  for (const auto& s : samples) {
    const double d = linalg::distance(phase_center, s.position);
    const double predicted = rf::distance_phase(d, wavelength);
    diffs.push_back(rf::wrap_phase(s.phase - predicted));
  }
  return rf::circular_mean(diffs);
}

double relative_offset(const AntennaCalibration& a,
                       const AntennaCalibration& b) {
  return rf::wrap_phase(a.phase_offset - b.phase_offset);
}

double remove_offset(double measured_phase, double phase_offset) {
  return rf::wrap_phase(measured_phase - phase_offset);
}

const char* calibration_status_name(CalibrationStatus status) {
  switch (status) {
    case CalibrationStatus::kOk:
      return "ok";
    case CalibrationStatus::kDegraded2D:
      return "degraded_2d";
    case CalibrationStatus::kNoSamples:
      return "no_samples";
    case CalibrationStatus::kDegenerateGeometry:
      return "degenerate_geometry";
    case CalibrationStatus::kSolverFailure:
      return "solver_failure";
  }
  return "unknown";
}

AdaptiveConfig robust_adaptive_defaults() {
  AdaptiveConfig cfg;
  cfg.base.method = SolveMethod::kRansac;
  return cfg;
}

signal::PreprocessConfig robust_preprocess_defaults() {
  signal::PreprocessConfig cfg;
  cfg.outlier_threshold = 1.0;  // median-window impulse rejection on
  return cfg;
}

namespace {

// Diagnostics of the windows an adaptive sweep actually averaged: the
// best conditioning achieved, the weakest consensus accepted, and the
// best window's residual statistics.
void fill_sweep_diagnostics(const AdaptiveResult& fix,
                            CalibrationDiagnostics& diag) {
  double best_condition = std::numeric_limits<double>::infinity();
  double min_inliers = 1.0;
  for (const auto& cand : fix.selected) {
    best_condition = std::min(best_condition, cand.result.condition);
    min_inliers = std::min(min_inliers, cand.result.inlier_fraction);
  }
  diag.condition = best_condition;
  diag.inlier_fraction = min_inliers;
  if (!fix.selected.empty()) {
    const auto& best = fix.selected.front().result;
    diag.mean_residual = best.mean_residual;
    diag.rms_residual = best.rms_residual;
    diag.position_sigma = best.position_sigma;
  }
}

void append_message(CalibrationDiagnostics& diag, const std::string& text) {
  if (!diag.message.empty()) diag.message += "; ";
  diag.message += text;
}

}  // namespace

CalibrationReport calibrate_antenna_robust(
    const std::vector<sim::PhaseSample>& samples, const Vec3& physical_center,
    const RobustCalibrationConfig& config,
    linalg::SolverWorkspace* workspace) {
  return calibrate_with_sweep(samples, physical_center, config, workspace,
                              [](const signal::PhaseProfile& profile,
                                 const AdaptiveConfig& cfg) {
                                return locate_adaptive(profile, cfg);
                              });
}

CalibrationReport calibrate_with_sweep(
    const std::vector<sim::PhaseSample>& samples, const Vec3& physical_center,
    const RobustCalibrationConfig& config, linalg::SolverWorkspace* workspace,
    const AdaptiveSweepFn& sweep) {
  LION_OBS_SPAN(obs::Stage::kCalibrate);
  CalibrationReport report;
  try {
    const auto profile = signal::preprocess(samples, config.preprocess,
                                            report.diagnostics.sanitize);
    report.diagnostics.profile_points = profile.size();
    if (profile.size() < 3) {
      report.status = CalibrationStatus::kNoSamples;
      append_message(report.diagnostics,
                     samples.empty() ? "empty sample stream"
                                     : "fewer than 3 samples survived "
                                       "sanitization/preprocessing");
      return report;
    }

    AdaptiveConfig cfg3 = config.adaptive;
    cfg3.base.target_dim = 3;
    if (!cfg3.base.side_hint) cfg3.base.side_hint = physical_center;
    if (workspace) cfg3.base.workspace = workspace;

    std::size_t scan_rank = 0;
    try {
      const auto frame = analyze_frame(profile, 3);
      scan_rank = frame.rank;
      // spd_rank is relative to the largest eigenvalue, so a stationary
      // scan (covariance ~ rounding noise) can still claim rank > 0; gate
      // on the absolute spatial spread as well.
      if (!frame.spread.empty() && frame.spread.front() < 1e-6) scan_rank = 0;
    } catch (const std::exception& e) {
      report.status = CalibrationStatus::kDegenerateGeometry;
      append_message(report.diagnostics, e.what());
      return report;
    }
    if (scan_rank == 0) {
      report.status = CalibrationStatus::kDegenerateGeometry;
      append_message(report.diagnostics,
                     "scan positions do not span any direction");
      return report;
    }

    std::optional<AdaptiveResult> fix;
    bool degraded = false;
    if (scan_rank + 1 >= 3) {
      try {
        AdaptiveResult r = sweep(profile, cfg3);
        CalibrationDiagnostics diag3;
        fill_sweep_diagnostics(r, diag3);
        if (diag3.condition <= config.max_condition) {
          fix = std::move(r);
        } else {
          append_message(report.diagnostics,
                         "3D solve rejected: condition " +
                             std::to_string(diag3.condition) + " above gate");
        }
      } catch (const std::exception& e) {
        append_message(report.diagnostics,
                       std::string("3D solve failed: ") + e.what());
      }
    } else {
      append_message(report.diagnostics,
                     "scan rank too low for a 3D fix (single line)");
    }

    if (!fix && config.allow_2d_fallback) {
      AdaptiveConfig cfg2 = cfg3;
      cfg2.base.target_dim = 2;
      try {
        fix = sweep(profile, cfg2);
        degraded = true;
        append_message(report.diagnostics,
                       "planar fallback used; z pinned to the believed "
                       "physical center");
      } catch (const std::exception& e) {
        append_message(report.diagnostics,
                       std::string("2D fallback failed: ") + e.what());
      }
    }

    if (!fix) {
      report.status = CalibrationStatus::kSolverFailure;
      return report;
    }

    fill_sweep_diagnostics(*fix, report.diagnostics);
    report.center.details = std::move(*fix);
    report.center.estimated_center = report.center.details.position;
    if (degraded) {
      // The planar solve lives in the scan plane; the depth axis is
      // resolved but the height is not — pin it to the prior.
      report.center.estimated_center[2] = physical_center[2];
    }
    report.center.displacement =
        report.center.estimated_center - physical_center;

    // Eq. 17 offset against the calibrated center, over the scrubbed raw
    // stream (offsets need wrapped phases, not the unwrapped profile).
    const auto clean = signal::sanitize_samples(samples);
    if (!clean.empty()) {
      report.phase_offset = calibrate_phase_offset(
          clean, report.center.estimated_center,
          config.adaptive.base.wavelength);
    } else {
      append_message(report.diagnostics,
                     "phase offset skipped: no finite raw samples");
    }

    report.status = degraded ? CalibrationStatus::kDegraded2D
                             : CalibrationStatus::kOk;
  } catch (const std::exception& e) {
    report.status = CalibrationStatus::kSolverFailure;
    append_message(report.diagnostics,
                   std::string("unexpected solver error: ") + e.what());
  }
  return report;
}

}  // namespace lion::core
