#include "core/calibration.hpp"

#include <stdexcept>

#include "rf/phase_model.hpp"

namespace lion::core {

CenterCalibration calibrate_phase_center(const signal::PhaseProfile& profile,
                                         const Vec3& physical_center,
                                         AdaptiveConfig config) {
  config.base.target_dim = 3;
  // The experimenter's own measurement is the natural side hint: the true
  // phase center is centimetres away, never on the other side of the rig.
  if (!config.base.side_hint) config.base.side_hint = physical_center;

  CenterCalibration out;
  out.details = locate_adaptive(profile, config);
  out.estimated_center = out.details.position;
  out.displacement = out.estimated_center - physical_center;
  return out;
}

double calibrate_phase_offset(const std::vector<sim::PhaseSample>& samples,
                              const Vec3& phase_center, double wavelength) {
  if (samples.empty()) {
    throw std::invalid_argument("calibrate_phase_offset: no samples");
  }
  std::vector<double> diffs;
  diffs.reserve(samples.size());
  for (const auto& s : samples) {
    const double d = linalg::distance(phase_center, s.position);
    const double predicted = rf::distance_phase(d, wavelength);
    diffs.push_back(rf::wrap_phase(s.phase - predicted));
  }
  return rf::circular_mean(diffs);
}

double relative_offset(const AntennaCalibration& a,
                       const AntennaCalibration& b) {
  return rf::wrap_phase(a.phase_offset - b.phase_offset);
}

double remove_offset(double measured_phase, double phase_offset) {
  return rf::wrap_phase(measured_phase - phase_offset);
}

}  // namespace lion::core
