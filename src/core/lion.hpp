// Umbrella header for the LION core library.
//
// Typical calibration flow:
//
//   #include "core/lion.hpp"
//
//   // 1. Scan: move a tag along a known trajectory, collect samples.
//   // 2. Preprocess: unwrap + smooth into a PhaseProfile.
//   auto profile = lion::signal::preprocess(samples);
//   // 3. Calibrate the phase center (3D adaptive localization).
//   auto center = lion::core::calibrate_phase_center(
//       profile, believed_physical_center, {});
//   // 4. Calibrate the phase offset from raw wrapped samples.
//   double offset = lion::core::calibrate_phase_offset(
//       samples, center.estimated_center);
#pragma once

#include "core/adaptive.hpp"
#include "core/calibration.hpp"
#include "core/frame.hpp"
#include "core/localizer.hpp"
#include "core/offset_graph.hpp"
#include "core/pairing.hpp"
#include "core/radical.hpp"
#include "core/ransac.hpp"
#include "core/tag_locator.hpp"
#include "core/tracker.hpp"
