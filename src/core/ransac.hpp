// Robust row-subset solving for the radical-line system.
//
// The IRLS weights of Eq. (15) assume residuals are unimodal around the
// true solution; a multipath burst or a cycle slip puts a *coherent* block
// of wrong equations into A x = k, and every reweighting scheme seeded
// from the contaminated OLS fit can converge to the wrong basin. The
// classic fix is consensus sampling: fit tiny random row subsets, score
// each candidate by the median squared residual over all rows (LMedS —
// threshold-free, tolerant of up to ~50% contamination), take the
// consensus set of the best candidate, and polish it with a Huber/Tukey
// IRLS refit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"
#include "linalg/small.hpp"

namespace lion::core {

/// Consensus-solver knobs.
struct RansacOptions {
  std::size_t max_iterations = 64;  ///< random subsets tried
  /// Absolute inlier residual threshold; <= 0 derives it from the best
  /// candidate's robust scale (2.5 * LMedS sigma), which adapts to the
  /// stream's own noise floor.
  double inlier_threshold = 0.0;
  /// Minimum fraction of rows the consensus set must reach; below it the
  /// sampling result is distrusted and a full-row Huber IRLS is returned.
  double min_inlier_fraction = 0.25;
  std::uint64_t seed = 0x5EEDC0DEULL;  ///< subset-sampling seed
  /// Loss used for the final refit on the consensus rows.
  linalg::RobustLoss refit_loss = linalg::RobustLoss::kHuber;
  linalg::IrlsOptions irls{};  ///< refit convergence control
};

/// Consensus-solve outcome.
struct RansacResult {
  linalg::LstsqResult solution;    ///< refit on the consensus rows
  std::vector<char> inlier_mask;   ///< per-row consensus membership
  double inlier_fraction = 0.0;    ///< |consensus| / rows
  std::size_t iterations = 0;      ///< subsets actually evaluated
  /// True when a consensus set was found; false when sampling failed and
  /// `solution` is the full-row robust-IRLS fallback.
  bool consensus = false;
  /// LMedS robust scale of the winning candidate (small-sample-corrected
  /// 1.4826 * sqrt(median r^2)); 0 on the full-row fallback. Captured so
  /// warm-start callers can gate on robust-scale drift between solves.
  double scale = 0.0;
  /// Inlier threshold the consensus mask was cut at (derived 2.5 * scale
  /// with the 1e-12 floor, or the caller's absolute threshold); 0 on the
  /// full-row fallback.
  double threshold = 0.0;
};

/// Solve A x = b by LMedS consensus sampling + robust refit. Requires
/// b.size() == a.rows(); throws std::invalid_argument otherwise or when
/// the system is underdetermined (fewer rows than columns).
RansacResult ransac_solve(const linalg::Matrix& a,
                          const std::vector<double>& b,
                          const RansacOptions& options = {});

/// Same solve through a caller-owned SolverWorkspace: bit-identical
/// results, but for systems with cols <= linalg::kSmallMaxCols every
/// sampling iteration, score, and refit runs on the workspace's cached
/// row products and scratch buffers — a warmed workspace makes the whole
/// consensus loop allocation-free apart from the returned result. The
/// workspace is (re)loaded with this system.
RansacResult ransac_solve(const linalg::Matrix& a,
                          const std::vector<double>& b,
                          const RansacOptions& options,
                          linalg::SolverWorkspace& ws);

/// Same, writing into a caller-owned result: reusing `out` across calls
/// removes the last steady-state allocations (mask + solution vectors).
void ransac_solve(const linalg::Matrix& a, const std::vector<double>& b,
                  const RansacOptions& options, linalg::SolverWorkspace& ws,
                  RansacResult& out);

/// Warm-started consensus solve for sliding-window callers: seed the
/// sampling tournament with the OLS fit over `prior_inliers` (the previous
/// window's consensus mask, mapped onto this system's rows — one char per
/// row; any other length is treated as no prior). A still-valid prior sets
/// the LMedS bar immediately, so the median prescreen rejects most random
/// candidates in one comparison pass; a stale prior simply loses the
/// tournament. With an empty prior this is bit-identical to ransac_solve.
void ransac_solve_warm(const linalg::Matrix& a, const std::vector<double>& b,
                       const RansacOptions& options,
                       linalg::SolverWorkspace& ws,
                       const std::vector<char>& prior_inliers,
                       RansacResult& out);

/// The consensus path's full-row fallback, exposed for warm-path callers
/// that must reproduce the batch branch bit-for-bit: a Huber-IRLS (per
/// `options.refit_loss`) over every row already loaded into `ws`, with the
/// classic solver's exceptions re-raised on failure. `iterations` is
/// recorded verbatim in the result.
void ransac_full_row_fallback(linalg::SolverWorkspace& ws,
                              const RansacOptions& options,
                              std::size_t iterations, RansacResult& out);

}  // namespace lion::core
