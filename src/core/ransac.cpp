#include "core/ransac.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/stats.hpp"
#include "obs/obs.hpp"
#include "rf/rng.hpp"

namespace lion::core {

namespace {

using linalg::SolveStatus;

// ---------------------------------------------------------------------------
// Wide-system path (cols > kSmallMaxCols — not produced by LION geometry,
// kept for generality). Allocates per iteration like any textbook LMedS,
// but the degenerate-subset branch is status-based here too: no throw /
// catch in the sampling loop.
// ---------------------------------------------------------------------------

// Residuals of x over every row of the full system.
std::vector<double> full_residuals(const linalg::Matrix& a,
                                   const std::vector<double>& b,
                                   const std::vector<double>& x) {
  std::vector<double> r = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] -= b[i];
  return r;
}

void full_row_fallback_general(const linalg::Matrix& a,
                               const std::vector<double>& b,
                               const RansacOptions& options,
                               std::size_t iterations, RansacResult& out) {
  LION_OBS_COUNT("ransac.fallbacks", 1);
  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  out.solution = linalg::solve_irls(a, b, irls);
  out.inlier_mask.assign(a.rows(), 1);
  out.inlier_fraction = 1.0;
  out.iterations = iterations;
  out.consensus = false;
  out.scale = 0.0;
  out.threshold = 0.0;
}

void ransac_solve_general(const linalg::Matrix& a,
                          const std::vector<double>& b,
                          const RansacOptions& options, RansacResult& out) {
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  // Too few rows for subset sampling to mean anything: robust-IRLS it.
  if (n < p + 3) {
    full_row_fallback_general(a, b, options, 0, out);
    return;
  }

  rf::Rng rng(options.seed);
  const std::size_t m = p + 1;  // mildly overdetermined minimal subset

  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;

  double best_score = std::numeric_limits<double>::infinity();
  std::vector<double> best_residuals;
  std::size_t evaluated = 0;

  linalg::Matrix sub(m, p);
  std::vector<double> sub_b(m);
  std::vector<double> x;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Partial Fisher-Yates: the first m entries become the random subset.
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<std::int64_t>(n - 1 - i)));
      std::swap(indices[i], indices[j]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t c = 0; c < p; ++c) sub(i, c) = a(indices[i], c);
      sub_b[i] = b[indices[i]];
    }
    LION_OBS_COUNT("ransac.iterations", 1);
    if (linalg::try_solve_least_squares(sub, sub_b, x) != SolveStatus::kOk) {
      // Degenerate subset (e.g. all rows from one burst).
      LION_OBS_COUNT("ransac.degenerate_subsets", 1);
      continue;
    }
    ++evaluated;
    auto r = full_residuals(a, b, x);
    std::vector<double> r2(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) r2[i] = r[i] * r[i];
    const double score = linalg::median(r2);
    if (score < best_score) {
      best_score = score;
      best_residuals = std::move(r);
    }
  }
  if (!std::isfinite(best_score) || best_residuals.empty()) {
    full_row_fallback_general(a, b, options, evaluated, out);
    return;
  }

  // LMedS robust scale with the usual small-sample correction, then the
  // consensus set at 2.5 sigma (or the caller's absolute threshold).
  const double sigma = 1.4826 *
                       (1.0 + 5.0 / static_cast<double>(n - p)) *
                       std::sqrt(best_score);
  const double threshold = options.inlier_threshold > 0.0
                               ? options.inlier_threshold
                               : std::max(2.5 * sigma, 1e-12);

  std::vector<char> mask(n, 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(best_residuals[i]) <= threshold) {
      mask[i] = 1;
      ++count;
    }
  }
  if (count < p + 1 ||
      static_cast<double>(count) <
          options.min_inlier_fraction * static_cast<double>(n)) {
    full_row_fallback_general(a, b, options, evaluated, out);
    return;
  }

  linalg::Matrix inlier_a(count, p);
  std::vector<double> inlier_b(count);
  std::size_t row = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    for (std::size_t c = 0; c < p; ++c) inlier_a(row, c) = a(i, c);
    inlier_b[row] = b[i];
    ++row;
  }
  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  try {
    out.solution = linalg::solve_irls(inlier_a, inlier_b, irls);
  } catch (const std::exception&) {
    full_row_fallback_general(a, b, options, evaluated, out);
    return;
  }
  out.inlier_mask = std::move(mask);
  out.inlier_fraction = static_cast<double>(count) / static_cast<double>(n);
  out.iterations = evaluated;
  out.consensus = true;
  out.scale = sigma;
  out.threshold = threshold;
  LION_OBS_COUNT("ransac.consensus", 1);
  LION_OBS_HIST("ransac.inlier_fraction", obs::fraction_bounds(),
                out.inlier_fraction);
}

// ---------------------------------------------------------------------------
// Small-system hot path (cols <= kSmallMaxCols — every LION system). All
// sampling, scoring, and refit state lives in the workspace; once it and
// the result are warm, a solve performs zero heap allocations. Results
// are bit-identical to the wide path run on the same system.
// ---------------------------------------------------------------------------

void full_row_fallback_ws(linalg::SolverWorkspace& ws,
                          const RansacOptions& options,
                          std::size_t iterations, RansacResult& out) {
  ransac_full_row_fallback(ws, options, iterations, out);
}

// One fused pass over the full system for a candidate x: residuals into
// `residuals`, squared residuals into `scratch` (the future median input),
// and a count of squared residuals strictly below `best`. Templated on the
// column count so the dot product fully unrolls; the accumulation order is
// the rolled loop's, so residual values are unchanged.
template <std::size_t P>
std::size_t candidate_pass(const linalg::SolverWorkspace& ws, const double* x,
                           double best, double* residuals, double* scratch) {
  const std::size_t n = ws.rows();
  std::size_t below = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = ws.row(i);
    double s = 0.0;
    for (std::size_t c = 0; c < P; ++c) s += row[c] * x[c];
    const double r = s - ws.rhs(i);
    residuals[i] = r;
    const double sq = r * r;
    scratch[i] = sq;
    if (sq < best) ++below;
  }
  return below;
}

std::size_t candidate_pass(const linalg::SolverWorkspace& ws, const double* x,
                           double best, double* residuals, double* scratch) {
  switch (ws.cols()) {
    case 1:
      return candidate_pass<1>(ws, x, best, residuals, scratch);
    case 2:
      return candidate_pass<2>(ws, x, best, residuals, scratch);
    case 3:
      return candidate_pass<3>(ws, x, best, residuals, scratch);
    default:
      return candidate_pass<4>(ws, x, best, residuals, scratch);
  }
}

void ransac_solve_small(const linalg::Matrix& a, const std::vector<double>& b,
                        const RansacOptions& options,
                        linalg::SolverWorkspace& ws, RansacResult& out,
                        const char* warm_mask = nullptr) {
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  ws.load(a, b);
  if (n < p + 3) {
    full_row_fallback_ws(ws, options, 0, out);
    return;
  }

  rf::Rng rng(options.seed);
  const std::size_t m = p + 1;

  ws.indices.resize(n);
  for (std::size_t i = 0; i < n; ++i) ws.indices[i] = i;
  ws.residuals.resize(n);
  ws.best_residuals.resize(n);
  ws.median_scratch.resize(n);

  double best_score = std::numeric_limits<double>::infinity();
  bool have_best = false;
  std::size_t evaluated = 0;
  double x[linalg::kSmallMaxCols];

  // Warm start: seed the best-so-far candidate with the OLS fit over the
  // caller's prior inlier set (the previous window's consensus, mapped to
  // this system's rows). With a still-valid prior, the median prescreen
  // below rejects most random candidates after one comparison pass; with a
  // stale prior the seed simply loses the sampling tournament. Either way
  // the loop below is untouched, so a cold call (warm_mask == nullptr)
  // stays bit-identical to the classic path.
  if (warm_mask != nullptr) {
    std::size_t warm_rows = 0;
    for (std::size_t i = 0; i < n; ++i) warm_rows += warm_mask[i] ? 1 : 0;
    if (warm_rows >= m) {
      linalg::SmallGram g;
      g.reset(p);
      double rhs[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
      accumulate_masked(ws, warm_mask, g, rhs);
      g.mirror();
      linalg::SmallCholesky chol;
      if (small_cholesky_factor(g, chol)) {
        small_cholesky_solve(chol, rhs, x);
        candidate_pass(ws, x, best_score, ws.residuals.data(),
                       ws.median_scratch.data());
        const double score = linalg::median_in_place(
            ws.median_scratch.data(), ws.median_scratch.data() + n);
        if (std::isfinite(score)) {
          best_score = score;
          std::swap(ws.residuals, ws.best_residuals);
          have_best = true;
          LION_OBS_COUNT("ransac.warm_seeds", 1);
        }
      }
    }
  }

  // Median prescreen threshold: with mid = n/2, median_in_place returns
  // v[mid] for odd n and 0.5 * (v[mid-1] + v[mid]) for even n. A candidate
  // can only *strictly* beat best_score if at least mid+1 (odd) / mid
  // (even) squared residuals are below it: otherwise v[mid] (and for even
  // n also v[mid-1]) is >= best, and the monotone FP add/halve keeps the
  // even-n average >= best too. Counting is one compare per row, so losing
  // candidates skip the nth_element median entirely — and losing is the
  // common case once an early good subset sets the bar.
  const std::size_t median_need = n / 2 + (n % 2 == 1 ? 1 : 0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<std::int64_t>(n - 1 - i)));
      std::swap(ws.indices[i], ws.indices[j]);
    }
    LION_OBS_COUNT("ransac.iterations", 1);
    // Minimal-subset solve straight from the cached row products.
    linalg::SmallGram g;
    g.reset(p);
    double rhs[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
    accumulate_rows(ws, ws.indices.data(), m, g, rhs);
    g.mirror();
    linalg::SmallCholesky chol;
    SolveStatus st;
    if (small_cholesky_factor(g, chol)) {
      small_cholesky_solve(chol, rhs, x);
      st = SolveStatus::kOk;
    } else {
      double qa[linalg::kSmallMaxMinimalRows][linalg::kSmallMaxCols];
      double qb[linalg::kSmallMaxMinimalRows];
      for (std::size_t i = 0; i < m; ++i) {
        const double* row = ws.row(ws.indices[i]);
        for (std::size_t c = 0; c < p; ++c) qa[i][c] = row[c];
        qb[i] = ws.rhs(ws.indices[i]);
      }
      st = linalg::small_qr_solve(qa, qb, m, p, x);
    }
    if (st != SolveStatus::kOk) {
      LION_OBS_COUNT("ransac.degenerate_subsets", 1);
      continue;
    }
    ++evaluated;
    const std::size_t below = candidate_pass(
        ws, x, best_score, ws.residuals.data(), ws.median_scratch.data());
    if (below < median_need) continue;  // median provably >= best_score
    const double score = linalg::median_in_place(
        ws.median_scratch.data(), ws.median_scratch.data() + n);
    if (score < best_score) {
      best_score = score;
      std::swap(ws.residuals, ws.best_residuals);
      have_best = true;
    }
  }
  if (!std::isfinite(best_score) || !have_best) {
    full_row_fallback_ws(ws, options, evaluated, out);
    return;
  }

  const double sigma = 1.4826 *
                       (1.0 + 5.0 / static_cast<double>(n - p)) *
                       std::sqrt(best_score);
  const double threshold = options.inlier_threshold > 0.0
                               ? options.inlier_threshold
                               : std::max(2.5 * sigma, 1e-12);

  out.inlier_mask.assign(n, 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(ws.best_residuals[i]) <= threshold) {
      out.inlier_mask[i] = 1;
      ++count;
    }
  }
  if (count < p + 1 ||
      static_cast<double>(count) <
          options.min_inlier_fraction * static_cast<double>(n)) {
    full_row_fallback_ws(ws, options, evaluated, out);
    return;
  }

  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  if (linalg::solve_irls_masked(ws, out.inlier_mask.data(), count, irls,
                                out.solution) != SolveStatus::kOk) {
    full_row_fallback_ws(ws, options, evaluated, out);
    return;
  }
  out.inlier_fraction = static_cast<double>(count) / static_cast<double>(n);
  out.iterations = evaluated;
  out.consensus = true;
  out.scale = sigma;
  out.threshold = threshold;
  LION_OBS_COUNT("ransac.consensus", 1);
  LION_OBS_HIST("ransac.inlier_fraction", obs::fraction_bounds(),
                out.inlier_fraction);
}

}  // namespace

void ransac_full_row_fallback(linalg::SolverWorkspace& ws,
                              const RansacOptions& options,
                              std::size_t iterations, RansacResult& out) {
  LION_OBS_COUNT("ransac.fallbacks", 1);
  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  const SolveStatus st =
      linalg::solve_irls_masked(ws, nullptr, ws.rows(), irls, out.solution);
  // The classic fallback lets solver failures propagate to the caller;
  // re-raise the same exceptions it would.
  if (st == SolveStatus::kUnderdetermined) {
    throw std::domain_error("least squares: underdetermined system");
  }
  if (st != SolveStatus::kOk) {
    throw std::domain_error("HouseholderQR::solve: rank deficient");
  }
  out.inlier_mask.assign(ws.rows(), 1);
  out.inlier_fraction = 1.0;
  out.iterations = iterations;
  out.consensus = false;
  out.scale = 0.0;
  out.threshold = 0.0;
}

void ransac_solve(const linalg::Matrix& a, const std::vector<double>& b,
                  const RansacOptions& options, linalg::SolverWorkspace& ws,
                  RansacResult& out) {
  LION_OBS_SPAN(obs::Stage::kRansac);
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  if (b.size() != n) {
    throw std::invalid_argument("ransac_solve: rhs size mismatch");
  }
  if (n < p) {
    throw std::invalid_argument("ransac_solve: underdetermined system");
  }
  if (p != 0 && p <= linalg::kSmallMaxCols) {
    ransac_solve_small(a, b, options, ws, out);
  } else {
    ransac_solve_general(a, b, options, out);
  }
}

RansacResult ransac_solve(const linalg::Matrix& a,
                          const std::vector<double>& b,
                          const RansacOptions& options,
                          linalg::SolverWorkspace& ws) {
  RansacResult out;
  ransac_solve(a, b, options, ws, out);
  return out;
}

RansacResult ransac_solve(const linalg::Matrix& a,
                          const std::vector<double>& b,
                          const RansacOptions& options) {
  linalg::SolverWorkspace ws;
  return ransac_solve(a, b, options, ws);
}

void ransac_solve_warm(const linalg::Matrix& a, const std::vector<double>& b,
                       const RansacOptions& options,
                       linalg::SolverWorkspace& ws,
                       const std::vector<char>& prior_inliers,
                       RansacResult& out) {
  LION_OBS_SPAN(obs::Stage::kRansac);
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  if (b.size() != n) {
    throw std::invalid_argument("ransac_solve_warm: rhs size mismatch");
  }
  if (n < p) {
    throw std::invalid_argument("ransac_solve_warm: underdetermined system");
  }
  const bool usable_prior = prior_inliers.size() == n;
  if (p != 0 && p <= linalg::kSmallMaxCols) {
    ransac_solve_small(a, b, options, ws, out,
                       usable_prior ? prior_inliers.data() : nullptr);
  } else {
    // The wide path has no warm seeding (LION never produces p > 4);
    // degrade to the cold solve rather than reject.
    ransac_solve_general(a, b, options, out);
  }
}

}  // namespace lion::core
