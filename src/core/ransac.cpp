#include "core/ransac.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/stats.hpp"
#include "obs/obs.hpp"
#include "rf/rng.hpp"

namespace lion::core {

namespace {

// Residuals of x over every row of the full system.
std::vector<double> full_residuals(const linalg::Matrix& a,
                                   const std::vector<double>& b,
                                   const std::vector<double>& x) {
  std::vector<double> r = a.multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] -= b[i];
  return r;
}

RansacResult full_row_fallback(const linalg::Matrix& a,
                               const std::vector<double>& b,
                               const RansacOptions& options,
                               std::size_t iterations) {
  LION_OBS_COUNT("ransac.fallbacks", 1);
  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  RansacResult out;
  out.solution = linalg::solve_irls(a, b, irls);
  out.inlier_mask.assign(a.rows(), 1);
  out.inlier_fraction = 1.0;
  out.iterations = iterations;
  out.consensus = false;
  return out;
}

}  // namespace

RansacResult ransac_solve(const linalg::Matrix& a,
                          const std::vector<double>& b,
                          const RansacOptions& options) {
  LION_OBS_SPAN(obs::Stage::kRansac);
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  if (b.size() != n) {
    throw std::invalid_argument("ransac_solve: rhs size mismatch");
  }
  if (n < p) {
    throw std::invalid_argument("ransac_solve: underdetermined system");
  }
  // Too few rows for subset sampling to mean anything: robust-IRLS it.
  if (n < p + 3) return full_row_fallback(a, b, options, 0);

  rf::Rng rng(options.seed);
  const std::size_t m = p + 1;  // mildly overdetermined minimal subset

  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;

  double best_score = std::numeric_limits<double>::infinity();
  std::vector<double> best_residuals;
  std::size_t evaluated = 0;

  linalg::Matrix sub(m, p);
  std::vector<double> sub_b(m);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Partial Fisher-Yates: the first m entries become the random subset.
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<std::int64_t>(n - 1 - i)));
      std::swap(indices[i], indices[j]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t c = 0; c < p; ++c) sub(i, c) = a(indices[i], c);
      sub_b[i] = b[indices[i]];
    }
    LION_OBS_COUNT("ransac.iterations", 1);
    std::vector<double> x;
    try {
      x = linalg::solve_least_squares(sub, sub_b).x;
    } catch (const std::exception&) {
      LION_OBS_COUNT("ransac.degenerate_subsets", 1);
      continue;  // degenerate subset (e.g. all rows from one burst)
    }
    ++evaluated;
    auto r = full_residuals(a, b, x);
    std::vector<double> r2(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) r2[i] = r[i] * r[i];
    const double score = linalg::median(r2);
    if (score < best_score) {
      best_score = score;
      best_residuals = std::move(r);
    }
  }
  if (!std::isfinite(best_score) || best_residuals.empty()) {
    return full_row_fallback(a, b, options, evaluated);
  }

  // LMedS robust scale with the usual small-sample correction, then the
  // consensus set at 2.5 sigma (or the caller's absolute threshold).
  const double sigma = 1.4826 *
                       (1.0 + 5.0 / static_cast<double>(n - p)) *
                       std::sqrt(best_score);
  const double threshold = options.inlier_threshold > 0.0
                               ? options.inlier_threshold
                               : std::max(2.5 * sigma, 1e-12);

  std::vector<char> mask(n, 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(best_residuals[i]) <= threshold) {
      mask[i] = 1;
      ++count;
    }
  }
  if (count < p + 1 ||
      static_cast<double>(count) <
          options.min_inlier_fraction * static_cast<double>(n)) {
    return full_row_fallback(a, b, options, evaluated);
  }

  linalg::Matrix inlier_a(count, p);
  std::vector<double> inlier_b(count);
  std::size_t row = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    for (std::size_t c = 0; c < p; ++c) inlier_a(row, c) = a(i, c);
    inlier_b[row] = b[i];
    ++row;
  }
  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  RansacResult out;
  try {
    out.solution = linalg::solve_irls(inlier_a, inlier_b, irls);
  } catch (const std::exception&) {
    return full_row_fallback(a, b, options, evaluated);
  }
  out.inlier_mask = std::move(mask);
  out.inlier_fraction = static_cast<double>(count) / static_cast<double>(n);
  out.iterations = evaluated;
  out.consensus = true;
  LION_OBS_COUNT("ransac.consensus", 1);
  LION_OBS_HIST("ransac.inlier_fraction", obs::fraction_bounds(),
                out.inlier_fraction);
  return out;
}

}  // namespace lion::core
