// Pair selection (Sec. IV-B1).
//
// Every linear equation comes from a *pair* of scan positions (one radical
// line / intersection circle per pair). Which pairs are chosen controls the
// conditioning of the system: pairs must be far enough apart that the
// geometric term dominates the phase noise, and collectively diverse enough
// to span every coordinate. Three strategies are provided:
//
//  * interval_pairs     — consecutive pairs a fixed arc interval apart
//                         (the paper's scanning-interval parameter x_o);
//  * spread_pairs       — all sufficiently-separated pairs up to a cap
//                         (a brute-force baseline for ablation);
//  * three_line_pairs   — the structured pairing of Fig. 11 / Eq. (10):
//                         along-line pairs for x, cross-line pairs for y/z.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "signal/profile.hpp"
#include "sim/trajectory.hpp"

namespace lion::core {

using IndexPair = std::pair<std::size_t, std::size_t>;

/// Pairs (i, j) where j is the first sample at least `interval` metres of
/// arc after i; i advances by `stride`. Pairs whose actual separation
/// overshoots interval by more than `tolerance` (gaps in the stream) are
/// skipped.
std::vector<IndexPair> interval_pairs(const signal::PhaseProfile& profile,
                                      double interval, double tolerance = 0.02,
                                      std::size_t stride = 1);

/// Ladder pairing: for each anchor i (strided), pair with the samples at
/// arc offsets interval, 2*interval, 4*interval, ... (a geometric ladder).
/// The short rungs give well-conditioned distance deltas; the long rungs
/// reach across scan segments (e.g. between the lines of a multi-line rig)
/// so every coordinate keeps a nonzero coefficient. This is the localizer's
/// default pairing. Rungs landing in stream gaps (fetching a sample more
/// than `tolerance` past the target arc) are skipped.
std::vector<IndexPair> ladder_pairs(const signal::PhaseProfile& profile,
                                    double interval, double tolerance = 0.1,
                                    std::size_t stride = 1);

/// All pairs at least `min_separation` apart (straight-line distance),
/// subsampled by `stride` and truncated to `max_pairs`.
std::vector<IndexPair> spread_pairs(const signal::PhaseProfile& profile,
                                    double min_separation,
                                    std::size_t max_pairs = 5000,
                                    std::size_t stride = 1);

/// Structured pairing for the three-parallel-line rig (Fig. 11): for each
/// anchor sample on L1 at coordinate x, emit
///   (P(x) on L1, P(x + interval) on L1)   -> constrains x,
///   (P(x) on L1, P(x) on L3)              -> constrains y,
///   (P(x) on L1, P(x) on L2)              -> constrains z.
/// Samples are matched to lines by proximity to the rig geometry within
/// `match_tolerance` (transit segments between lines are ignored).
std::vector<IndexPair> three_line_pairs(const signal::PhaseProfile& profile,
                                        const sim::ThreeLineRig& rig,
                                        double interval,
                                        double match_tolerance = 0.02);

/// Keep only profile points whose x coordinate lies within
/// [center_x - range/2, center_x + range/2] — the paper's scanning-range
/// restriction (Sec. V-E applies it along the slide axis).
signal::PhaseProfile restrict_to_x_range(const signal::PhaseProfile& profile,
                                         double center_x, double range);

}  // namespace lion::core
