#include "core/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "rf/constants.hpp"
#include "rf/phase_model.hpp"

namespace lion::core {

namespace {

// Deterministic unit normal to `axis`: project out the basis vector least
// aligned with it (lowest index wins ties), so every solver sharing a belt
// direction places the recovered perpendicular on the same ray.
Vec3 completion_normal(const Vec3& axis) {
  std::size_t best = 0;
  double best_align = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < 3; ++i) {
    Vec3 e{};
    e[i] = 1.0;
    const double align = std::abs(e.dot(axis));
    if (align < best_align) {
      best_align = align;
      best = i;
    }
  }
  Vec3 e{};
  e[best] = 1.0;
  const Vec3 w = e - e.dot(axis) * axis;
  return w.normalized();
}

}  // namespace

IncrementalTrackSolver::IncrementalTrackSolver(IncrementalTrackConfig config)
    : config_(std::move(config)) {
  if (config_.belt_direction.norm() == 0.0) {
    throw std::invalid_argument("IncrementalTrackSolver: zero belt direction");
  }
  config_.belt_direction = config_.belt_direction.normalized();
  if (config_.belt_speed <= 0.0) {
    throw std::invalid_argument(
        "IncrementalTrackSolver: speed must be positive");
  }
  if (config_.wavelength <= 0.0) config_.wavelength = rf::kDefaultWavelength;
  if (config_.pair_interval <= 0.0) {
    throw std::invalid_argument(
        "IncrementalTrackSolver: pair_interval must be positive");
  }
  if (config_.min_rows < 3) config_.min_rows = 3;

  // Perpendicular placement: toward the side hint when one is given (and
  // not parallel to the belt), else a deterministic completion.
  perp_axis_ = completion_normal(config_.belt_direction);
  if (config_.side_hint) {
    const Vec3 off = *config_.side_hint - config_.antenna_phase_center;
    const Vec3 w = off - off.dot(config_.belt_direction) *
                             config_.belt_direction;
    if (w.norm() > 1e-12) perp_axis_ = w.normalized();
  }
  normals_.reset(2);
}

double IncrementalTrackSolver::delta_d(const Sample& s) const {
  return rf::phase_to_distance_delta(s.unwrapped - epoch_theta_ref_,
                                     config_.wavelength);
}

double IncrementalTrackSolver::local_q(const Sample& s) const {
  // Virtual moving-antenna profile P(t) = A - v (t - t0) d, expressed on
  // the axis u = d with origin A: q = -v (t - t0) = -arc.
  return -config_.belt_speed * (s.t - epoch_t0_);
}

void IncrementalTrackSolver::push(const sim::PhaseSample& sample) {
  Sample s;
  s.t = sample.t;
  s.raw_phase = sample.phase;
  if (samples_.empty()) {
    reset_epoch();
    epoch_t0_ = s.t;
    epoch_theta_ref_ = s.raw_phase;
    have_epoch_ = true;
    unwrap_prev_raw_ = s.raw_phase;
    unwrap_accum_ = 0.0;
    s.unwrapped = s.raw_phase;
  } else {
    // Streaming unwrap, mirroring signal::unwrap_in_place: in-range jumps
    // stay bit-exact, only true wraps adjust the accumulator.
    const double raw_jump = s.raw_phase - unwrap_prev_raw_;
    if (raw_jump > rf::kPi || raw_jump <= -rf::kPi) {
      unwrap_accum_ += rf::wrap_phase_symmetric(raw_jump) - raw_jump;
    }
    unwrap_prev_raw_ = s.raw_phase;
    s.unwrapped = s.raw_phase + unwrap_accum_;
  }
  s.arc = config_.belt_speed * (s.t - epoch_t0_);
  samples_.push_back(s);
  const std::size_t total_rows_before = rows_.size();
  append_pairs_for_newest();
  ++appends_since_rebuild_;

  // Consensus refresh cadence: a young baseline extrapolates poorly, so
  // the gate would wrongly shed rows if it were held for 4096 appends.
  // Doubling — refresh after as many appends as the system had rows at
  // the last rebuild — keeps every gate decision within ~2x of the
  // fitted arc while costing amortized O(1) row-accumulations per push.
  // The very first baseline fires the moment enough rows exist.
  if (rows_.size() >= config_.min_rows) {
    const bool crossed = total_rows_before < config_.min_rows;
    const std::size_t cadence =
        std::min(config_.rebuild_every_appends,
                 std::max(config_.min_rows, rows_at_rebuild_));
    if (crossed || appends_since_rebuild_ >= cadence) rebuild();
  }
}

void IncrementalTrackSolver::append_pairs_for_newest() {
  const std::size_t j = base_index_ + samples_.size() - 1;
  const Sample& sj = samples_.back();
  // Moving-cursor interval pairing (interval_pairs semantics, stride 1):
  // the newest sample is the first to cross each satisfied anchor's
  // target, because anchors only advance when crossed.
  while (next_anchor_ < j) {
    const Sample& anchor = at(next_anchor_);
    const double target = anchor.arc + config_.pair_interval;
    if (sj.arc < target) break;  // future samples may still satisfy it
    if (sj.arc - target <= config_.pair_tolerance) {
      Row row;
      make_row(next_anchor_, j, row);
      append_row(row);
    }
    ++next_anchor_;
  }
}

void IncrementalTrackSolver::make_row(std::size_t anchor_global,
                                      std::size_t partner_global,
                                      Row& out) const {
  const Sample& si = at(anchor_global);
  const Sample& sj = at(partner_global);
  const double qi = local_q(si);
  const double qj = local_q(sj);
  const double ddi = delta_d(si);
  const double ddj = delta_d(sj);
  out.anchor = anchor_global;
  out.a0 = 2.0 * (qi - qj);
  out.a1 = 2.0 * (ddi - ddj);
  out.k = qi * qi - qj * qj - ddi * ddi + ddj * ddj;
}

void IncrementalTrackSolver::append_row(Row row) {
  if (have_baseline_) {
    // Inclusion gate for rows appended between rebuilds: residual against
    // the rebuild-time estimate (fixed until the next rebuild, so the
    // decision is a pure function of the row itself).
    const double r = row.a0 * gate_x_[0] + row.a1 * gate_x_[1] - row.k;
    row.included = std::abs(r) <= include_threshold_;
  } else {
    row.included = true;
  }
  if (row.included) {
    const double a[2] = {row.a0, row.a1};
    normals_.append(a, row.k);
  }
  rows_.push_back(row);
}

void IncrementalTrackSolver::retire(std::size_t count) {
  count = std::min(count, samples_.size());
  if (count == 0) return;
  const std::size_t new_base = base_index_ + count;
  while (!rows_.empty() && rows_.front().anchor < new_base) {
    const Row& row = rows_.front();
    if (row.included) {
      const double a[2] = {row.a0, row.a1};
      normals_.downdate(a, row.k);
    }
    rows_.pop_front();
  }
  samples_.erase(samples_.begin(),
                 samples_.begin() + static_cast<std::ptrdiff_t>(count));
  base_index_ = new_base;
  if (next_anchor_ < base_index_) next_anchor_ = base_index_;
  retires_since_rebuild_ += count;

  if (samples_.empty()) {
    reset_epoch();
    return;
  }
  if (retires_since_rebuild_ >= config_.rebuild_every_retires ||
      normals_.cancellation() > config_.rebuild_cancellation) {
    rebuild();
  }
}

void IncrementalTrackSolver::clear() {
  base_index_ += samples_.size();
  samples_.clear();
  reset_epoch();
}

void IncrementalTrackSolver::reset_epoch() {
  rows_.clear();
  next_anchor_ = base_index_;
  have_epoch_ = false;
  have_baseline_ = false;
  baseline_rms_ = 0.0;
  include_threshold_ = 0.0;
  gate_x_[0] = gate_x_[1] = 0.0;
  normals_.reset(2);
  appends_since_rebuild_ = 0;
  retires_since_rebuild_ = 0;
  rows_at_rebuild_ = 0;
}

linalg::IncrementalNormals IncrementalTrackSolver::batch_normals() const {
  linalg::IncrementalNormals fresh;
  fresh.reset(2);
  for (const Row& row : rows_) {
    if (!row.included) continue;
    const double a[2] = {row.a0, row.a1};
    fresh.append(a, row.k);
  }
  return fresh;
}

void IncrementalTrackSolver::rebuild() {
  LION_OBS_COUNT("incremental.rebuilds", 1);
  ++rebuilds_;
  appends_since_rebuild_ = 0;
  retires_since_rebuild_ = 0;
  if (samples_.empty()) {
    reset_epoch();
    return;
  }

  // Remember the surviving consensus before re-deriving the rows. The new
  // epoch shifts every arc/q by a constant, so re-pairing over the same
  // samples reproduces the same (anchor, partner) set and the masks map
  // one-to-one.
  prior_inliers_.clear();
  prior_inliers_.reserve(rows_.size());
  for (const Row& row : rows_) prior_inliers_.push_back(row.included ? 1 : 0);
  const bool had_baseline = have_baseline_;

  // Re-anchor the datum on the oldest surviving sample and re-unwrap.
  epoch_t0_ = samples_.front().t;
  have_epoch_ = true;
  double accum = 0.0;
  double prev_raw = samples_.front().raw_phase;
  samples_.front().unwrapped = prev_raw;
  samples_.front().arc = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    Sample& s = samples_[i];
    const double raw_jump = s.raw_phase - prev_raw;
    if (raw_jump > rf::kPi || raw_jump <= -rf::kPi) {
      accum += rf::wrap_phase_symmetric(raw_jump) - raw_jump;
    }
    prev_raw = s.raw_phase;
    s.unwrapped = s.raw_phase + accum;
    s.arc = config_.belt_speed * (s.t - epoch_t0_);
  }
  epoch_theta_ref_ = samples_.front().unwrapped;
  unwrap_prev_raw_ = prev_raw;
  unwrap_accum_ = accum;

  // Re-derive the rows under the new datum.
  rows_.clear();
  next_anchor_ = base_index_;
  std::size_t cursor = base_index_;
  for (std::size_t off = 1; off < samples_.size(); ++off) {
    const std::size_t j = base_index_ + off;
    const Sample& sj = samples_[off];
    while (cursor < j) {
      const Sample& anchor = at(cursor);
      const double target = anchor.arc + config_.pair_interval;
      if (sj.arc < target) break;
      if (sj.arc - target <= config_.pair_tolerance) {
        Row row;
        make_row(cursor, j, row);
        row.included = true;  // consensus decided below
        rows_.push_back(row);
      }
      ++cursor;
    }
  }
  next_anchor_ = cursor;

  const std::size_t n = rows_.size();
  bool solved = false;
  double x[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};

  // Consensus refresh: RANSAC warm-started from the surviving inlier set
  // when there is sampling headroom, plain LS over everything otherwise.
  if (n >= std::max(config_.min_rows, config_.ransac_min_rows)) {
    try {
      linalg::Matrix a(n, 2);
      std::vector<double> b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a(i, 0) = rows_[i].a0;
        a(i, 1) = rows_[i].a1;
        b[i] = rows_[i].k;
      }
      if (!had_baseline || prior_inliers_.size() != n) prior_inliers_.clear();
      ransac_solve_warm(a, b, config_.ransac, ws_, prior_inliers_,
                        ransac_result_);
      if (ransac_result_.inlier_mask.size() == n) {
        for (std::size_t i = 0; i < n; ++i) {
          rows_[i].included = ransac_result_.inlier_mask[i] != 0;
        }
      }
      if (ransac_result_.solution.x.size() >= 2) {
        x[0] = ransac_result_.solution.x[0];
        x[1] = ransac_result_.solution.x[1];
      }
    } catch (const std::exception&) {
      for (Row& row : rows_) row.included = true;  // degrade to include-all
    }
  }

  // Re-accumulate the normals from the consensus rows (this is the
  // sliding-window re-accumulation that bounds downdating error).
  normals_.reset(2);
  for (const Row& row : rows_) {
    if (!row.included) continue;
    const double a[2] = {row.a0, row.a1};
    normals_.append(a, row.k);
  }
  solved = normals_.rows() >= config_.min_rows && normals_.solve(x);

  rows_at_rebuild_ = rows_.size();
  have_baseline_ = solved;
  if (solved) {
    gate_x_[0] = x[0];
    gate_x_[1] = x[1];
    baseline_rms_ = normals_.rms(x);
    include_threshold_ =
        config_.gate_rms_factor *
        std::max(baseline_rms_, config_.gate_rms_floor);
  } else {
    baseline_rms_ = 0.0;
    include_threshold_ = 0.0;
    gate_x_[0] = gate_x_[1] = 0.0;
  }
}

TickResult IncrementalTrackSolver::tick() const {
  TickResult out;
  if (samples_.empty()) {
    out.fallback = true;
    return out;
  }
  out.t = samples_.back().t;
  out.rows = normals_.rows();
  if (!have_baseline_ || normals_.rows() < config_.min_rows) {
    out.fallback = true;
    return out;
  }
  double x[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  if (!normals_.solve(x)) {
    out.fallback = true;
    return out;
  }
  out.rms = normals_.rms(x);
  const double gate =
      config_.gate_rms_factor *
      std::max(baseline_rms_, config_.gate_rms_floor);
  if (!std::isfinite(out.rms) || out.rms > gate) {
    out.fallback = true;
    return out;
  }

  // Pose recovery (Observation 2 in the fixed frame): the reference datum
  // sits at q_ref = 0 (the epoch origin is the virtual antenna position at
  // epoch_t0_, i.e. the phase center itself), so the perpendicular offset
  // is rho^2 = d_r^2 - alpha^2.
  const double alpha = x[0];
  const double d_r = std::abs(x[1]);
  const double perp2 = d_r * d_r - alpha * alpha;
  const double perp = perp2 > 0.0 ? std::sqrt(perp2) : 0.0;
  const Vec3 at_epoch = config_.antenna_phase_center +
                        alpha * config_.belt_direction + perp * perp_axis_;
  const Vec3 drift = config_.belt_speed * config_.belt_direction;
  out.start = at_epoch + (samples_.front().t - epoch_t0_) * drift;
  out.position = at_epoch + (out.t - epoch_t0_) * drift;

  // 1-sigma along-belt uncertainty from the 2x2 normal equations:
  // cov = sigma_r^2 G^{-1}, sigma_r^2 the dof-corrected residual variance.
  const std::size_t n = normals_.rows();
  if (n > 2) {
    const double* g = normals_.gram_packed();  // [g00, g01, g11]
    const double det = g[0] * g[2] - g[1] * g[1];
    if (det > 0.0) {
      const double sigma2 = out.rms * out.rms * static_cast<double>(n) /
                            static_cast<double>(n - 2);
      out.sigma = std::sqrt(std::max(0.0, sigma2 * g[2] / det));
    }
  }
  out.valid = true;
  return out;
}

}  // namespace lion::core
