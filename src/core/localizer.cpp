#include "core/localizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/decompositions.hpp"
#include "obs/obs.hpp"

namespace lion::core {

const char* solve_method_name(SolveMethod m) {
  switch (m) {
    case SolveMethod::kLeastSquares:
      return "LS";
    case SolveMethod::kWeightedLeastSquares:
      return "WLS";
    case SolveMethod::kIterativeReweighted:
      return "IRLS";
    case SolveMethod::kHuberIrls:
      return "HUBER";
    case SolveMethod::kTukeyIrls:
      return "TUKEY";
    case SolveMethod::kRansac:
      return "RANSAC";
  }
  return "unknown";
}

LinearLocalizer::LinearLocalizer(LocalizerConfig config)
    : config_(std::move(config)) {
  if (config_.target_dim != 2 && config_.target_dim != 3) {
    throw std::invalid_argument("LinearLocalizer: target_dim must be 2 or 3");
  }
  if (config_.wavelength <= 0.0) {
    throw std::invalid_argument("LinearLocalizer: wavelength must be positive");
  }
  if (config_.pair_interval <= 0.0) {
    throw std::invalid_argument(
        "LinearLocalizer: pair_interval must be positive");
  }
}

LocalizationResult LinearLocalizer::locate(
    const signal::PhaseProfile& profile) const {
  const auto pairs =
      ladder_pairs(profile, config_.pair_interval, config_.pair_tolerance,
                   config_.pair_stride);
  return locate_with_pairs(profile, pairs);
}

LinearSystem LinearLocalizer::prepare_system(
    const signal::PhaseProfile& profile, const std::vector<IndexPair>& pairs,
    TrajectoryFrame& frame) const {
  if (profile.size() < 3) {
    throw std::invalid_argument(
        "LinearLocalizer: need at least three samples");
  }
  if (pairs.empty()) {
    throw std::invalid_argument(
        "LinearLocalizer: no usable sample pairs (scan too short for the "
        "configured interval?)");
  }

  frame = analyze_frame(profile, config_.target_dim);
  if (frame.rank + 1 < config_.target_dim) {
    throw std::invalid_argument(
        "LinearLocalizer: scan dimension is more than one short of the "
        "target dimension (a single line cannot produce a 3D fix)");
  }

  const std::size_t ref =
      config_.reference_index.value_or(profile.size() / 2);
  return build_system(profile, frame, pairs, ref, config_.wavelength);
}

LocalizationResult LinearLocalizer::locate_with_pairs(
    const signal::PhaseProfile& profile,
    const std::vector<IndexPair>& pairs) const {
  TrajectoryFrame frame;
  const LinearSystem sys = prepare_system(profile, pairs, frame);

  SolveOutcome oc;
  linalg::LstsqResult& sol = oc.solution;
  LION_OBS_SPAN(obs::Stage::kSolve);
  switch (config_.method) {
    case SolveMethod::kLeastSquares:
      sol = linalg::solve_least_squares(sys.a, sys.k);
      break;
    case SolveMethod::kWeightedLeastSquares: {
      // One reweight pass: LS residuals -> Gaussian weights -> WLS (Eq. 14-16).
      const auto first = linalg::solve_least_squares(sys.a, sys.k);
      const auto w = linalg::gaussian_residual_weights(first.residuals);
      sol = linalg::solve_weighted_least_squares(sys.a, sys.k, w);
      sol.iterations = 1;
      break;
    }
    case SolveMethod::kIterativeReweighted:
      sol = config_.workspace
                ? linalg::solve_irls(sys.a, sys.k, config_.irls,
                                     *config_.workspace)
                : linalg::solve_irls(sys.a, sys.k, config_.irls);
      oc.ws_holds_system = config_.workspace != nullptr;
      break;
    case SolveMethod::kHuberIrls:
    case SolveMethod::kTukeyIrls: {
      linalg::IrlsOptions irls = config_.irls;
      irls.loss = config_.method == SolveMethod::kHuberIrls
                      ? linalg::RobustLoss::kHuber
                      : linalg::RobustLoss::kTukey;
      sol = config_.workspace
                ? linalg::solve_irls(sys.a, sys.k, irls, *config_.workspace)
                : linalg::solve_irls(sys.a, sys.k, irls);
      oc.ws_holds_system = config_.workspace != nullptr;
      break;
    }
    case SolveMethod::kRansac: {
      auto rr =
          config_.workspace
              ? ransac_solve(sys.a, sys.k, config_.ransac, *config_.workspace)
              : ransac_solve(sys.a, sys.k, config_.ransac);
      sol = std::move(rr.solution);
      oc.inlier_fraction = rr.inlier_fraction;
      oc.ws_holds_system = config_.workspace != nullptr;
      oc.consensus = rr.consensus;
      oc.consensus_scale = rr.scale;
      oc.consensus_threshold = rr.threshold;
      break;
    }
  }
  return assemble_result(profile, frame, sys, pairs.size(), oc);
}

LocalizationResult LinearLocalizer::assemble_result(
    const signal::PhaseProfile& profile, const TrajectoryFrame& frame,
    const LinearSystem& sys, std::size_t equations,
    const SolveOutcome& oc) const {
  const linalg::LstsqResult& sol = oc.solution;
  const double inlier_fraction = oc.inlier_fraction;
  const bool ws_holds_system = oc.ws_holds_system;

  LocalizationResult out;
  out.inlier_fraction = inlier_fraction;
  out.consensus = oc.consensus;
  out.consensus_scale = oc.consensus_scale;
  out.consensus_threshold = oc.consensus_threshold;
  out.equations = equations;
  out.trajectory_rank = frame.rank;
  out.condition = sys.a.rows() >= sys.a.cols()
                      ? linalg::HouseholderQR(sys.a).condition_estimate()
                      : std::numeric_limits<double>::infinity();

  out.solver_iterations = sol.iterations;
  out.mean_residual = sol.mean_residual;
  out.rms_residual = sol.rms_residual;

  // GDOP: unknown covariance ~ sigma_r^2 (A^T A)^{-1} with sigma_r^2 the
  // dof-corrected residual variance of the final solve. Degenerate or
  // barely-determined systems keep sigma empty.
  // (With kRansac the residual vector covers the consensus rows only.)
  if (sol.residuals.size() > sys.a.cols()) {
    try {
      // After a workspace-routed solve the workspace still caches this
      // exact system, so its product-cache gram (bit-exact with
      // sys.a.gram()) spares a second pass over the full matrix. The
      // dimension check guards the p > kSmallMaxCols case, where the
      // solver falls back to the legacy path without loading.
      const bool ws_gram = ws_holds_system && config_.workspace->loaded() &&
                           config_.workspace->rows() == sys.a.rows() &&
                           config_.workspace->cols() == sys.a.cols();
      const linalg::Matrix cov = linalg::inverse(
          ws_gram ? config_.workspace->gram_matrix() : sys.a.gram());
      const double dof = static_cast<double>(sol.residuals.size()) -
                         static_cast<double>(sys.a.cols());
      double ss = 0.0;
      for (double r : sol.residuals) ss += r * r;
      const double sigma2 = ss / dof;
      out.sigma.resize(sys.a.cols());
      for (std::size_t i = 0; i < sys.a.cols(); ++i) {
        out.sigma[i] = std::sqrt(std::max(0.0, sigma2 * cov(i, i)));
      }
      for (std::size_t i = 0; i + 1 < out.sigma.size(); ++i) {
        out.position_sigma = std::max(out.position_sigma, out.sigma[i]);
      }
    } catch (const std::domain_error&) {
      // Singular normal equations: leave sigma empty.
    }
  }

  const std::size_t rank = frame.rank;
  std::vector<double> local(sol.x.begin(),
                            sol.x.begin() + static_cast<std::ptrdiff_t>(rank));
  const double d_r = sol.x[rank];
  out.reference_distance = std::abs(d_r);

  if (frame.rank == config_.target_dim) {
    out.position = frame.from_local(local);
  } else {
    // Lower-dimension recovery (Observation 2): the perpendicular offset
    // follows from d_r and the in-frame distance to the reference point.
    const auto q_ref = frame.to_local(profile[sys.reference_index].position);
    double in_frame2 = 0.0;
    for (std::size_t c = 0; c < rank; ++c) {
      const double diff = local[c] - q_ref[c];
      in_frame2 += diff * diff;
    }
    const double perp2 = d_r * d_r - in_frame2;
    const double perp = perp2 > 0.0 ? std::sqrt(perp2) : 0.0;

    const Vec3 plus = frame.from_local(local, perp);
    const Vec3 minus = frame.from_local(local, -perp);
    if (config_.side_hint) {
      out.position = linalg::squared_distance(plus, *config_.side_hint) <=
                             linalg::squared_distance(minus, *config_.side_hint)
                         ? plus
                         : minus;
    } else {
      out.position = plus;
    }
    out.perpendicular_recovered = true;
  }
  return out;
}

}  // namespace lion::core
