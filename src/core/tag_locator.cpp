#include "core/tag_locator.hpp"

namespace lion::core {

signal::PhaseProfile virtual_profile(const Vec3& antenna_phase_center,
                                     const std::vector<TagScanPoint>& scan) {
  signal::PhaseProfile profile;
  profile.reserve(scan.size());
  for (const auto& p : scan) {
    profile.push_back(
        {antenna_phase_center - p.displacement, p.phase, 0.0});
  }
  return profile;
}

LocalizationResult locate_tag_start(const Vec3& antenna_phase_center,
                                    const std::vector<TagScanPoint>& scan,
                                    const LocalizerConfig& config) {
  const auto profile = virtual_profile(antenna_phase_center, scan);
  return LinearLocalizer(config).locate(profile);
}

}  // namespace lion::core
