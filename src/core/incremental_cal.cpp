#include "core/incremental_cal.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/frame.hpp"
#include "core/pairing.hpp"
#include "linalg/stats.hpp"

namespace lion::core {

namespace {

// Gate-trip signal of the warm sweep. Deliberately NOT derived from
// std::exception: calibrate_with_sweep's stage handlers catch
// std::exception (that is batch behavior the warm path must not disturb),
// so the abort rides an unrelated type straight out to flush().
struct WarmAbort {
  CalFallbackReason reason;
  const char* detail;
};

// NaN-safe gate: trips when `value` is above `limit` OR not comparable
// (NaN must fall back, not sail through a false '>' comparison).
bool gate_exceeded(double value, double limit) { return !(value <= limit); }

}  // namespace

const char* cal_flush_source_name(CalFlushSource source) {
  switch (source) {
    case CalFlushSource::kMemo:
      return "memo";
    case CalFlushSource::kIncremental:
      return "incremental";
    case CalFlushSource::kFallback:
      return "fallback";
  }
  return "unknown";
}

const char* cal_fallback_reason_name(CalFallbackReason reason) {
  switch (reason) {
    case CalFallbackReason::kNone:
      return "none";
    case CalFallbackReason::kCold:
      return "cold";
    case CalFallbackReason::kStatus:
      return "status";
    case CalFallbackReason::kCarve:
      return "carve";
    case CalFallbackReason::kDelta:
      return "delta";
    case CalFallbackReason::kRows:
      return "rows";
    case CalFallbackReason::kDrift:
      return "drift";
    case CalFallbackReason::kCancellation:
      return "cancellation";
    case CalFallbackReason::kSweep:
      return "sweep";
  }
  return "unknown";
}

std::uint64_t cal_buffer_digest(const std::vector<sim::PhaseSample>& buffer,
                                std::size_t count) {
  // FNV-1a 64 over the bit patterns of every per-sample field, in stream
  // order. Bitwise, so -0.0 vs 0.0 and NaN payloads all count as changes:
  // the memo tier must never equate buffers the solver could distinguish.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  const auto mixd = [&mix64](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix64(bits);
  };
  const std::size_t n = std::min(count, buffer.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = buffer[i];
    mixd(s.t);
    mixd(s.position[0]);
    mixd(s.position[1]);
    mixd(s.position[2]);
    mixd(s.phase);
    mixd(s.rssi_dbm);
    mix64(s.channel);
  }
  return h;
}

IncrementalCalibrationSolver::IncrementalCalibrationSolver(
    IncrementalCalConfig config)
    : config_(std::move(config)) {}

void IncrementalCalibrationSolver::reset() {
  anchor_valid_ = false;
  anchor_samples_ = 0;
  anchor_digest_ = 0;
  anchor_candidates_.clear();
}

void IncrementalCalibrationSolver::install_anchor(
    const std::vector<sim::PhaseSample>& buffer,
    const CalibrationReport& report) {
  anchor_report_ = report;
  anchor_samples_ = buffer.size();
  anchor_digest_ = cal_buffer_digest(buffer, buffer.size());
  anchor_candidates_.clear();
  anchor_candidates_.reserve(report.center.details.candidates.size());
  for (const auto& cand : report.center.details.candidates) {
    AnchorCandidate a;
    a.usable = cand.usable;
    // equations == 0 marks a candidate whose solve threw (its result is
    // default-constructed) — there is nothing to seed from.
    a.consensus = cand.result.equations > 0 && cand.result.consensus;
    a.position = cand.result.position;
    a.consensus_scale = cand.result.consensus_scale;
    anchor_candidates_.push_back(a);
  }
  anchor_valid_ = true;
}

CalFlushDecision IncrementalCalibrationSolver::fallback(
    CalFallbackReason reason, const char* detail) {
  ++stats_.fallbacks;
  switch (reason) {
    case CalFallbackReason::kCold:
      ++stats_.fb_cold;
      break;
    case CalFallbackReason::kStatus:
      ++stats_.fb_status;
      break;
    case CalFallbackReason::kCarve:
      ++stats_.fb_carve;
      break;
    case CalFallbackReason::kDelta:
      ++stats_.fb_delta;
      break;
    case CalFallbackReason::kRows:
      ++stats_.fb_rows;
      break;
    case CalFallbackReason::kDrift:
      ++stats_.fb_drift;
      break;
    case CalFallbackReason::kCancellation:
      ++stats_.fb_cancellation;
      break;
    case CalFallbackReason::kSweep:
      ++stats_.fb_sweep;
      break;
    case CalFallbackReason::kNone:
      break;
  }
  CalFlushDecision d;
  d.source = CalFlushSource::kFallback;
  d.reason = reason;
  d.report_ready = false;
  d.detail = detail;
  return d;
}

CalFlushDecision IncrementalCalibrationSolver::flush(
    const std::vector<sim::PhaseSample>& buffer) {
  ++stats_.flushes;
  if (!anchor_valid_) return fallback(CalFallbackReason::kCold, "no anchor");

  // Append detection. Calibrate session buffers are append-only upstream,
  // but the solver re-verifies: the anchor prefix must be bitwise intact.
  if (buffer.size() < anchor_samples_ ||
      cal_buffer_digest(buffer, anchor_samples_) != anchor_digest_) {
    return fallback(CalFallbackReason::kCarve, "anchor prefix not intact");
  }

  if (buffer.size() == anchor_samples_) {
    // The exact anchor buffer: the pipeline is deterministic, so the
    // anchor report IS the batch answer — for any status, ok or not.
    ++stats_.memo;
    CalFlushDecision d;
    d.source = CalFlushSource::kMemo;
    d.reason = CalFallbackReason::kNone;
    d.report_ready = true;
    d.report = anchor_report_;
    return d;
  }

  // Warm tier below: only a clean 3D consensus anchor seeds it.
  if (anchor_report_.status != CalibrationStatus::kOk) {
    return fallback(CalFallbackReason::kStatus, "anchor not a clean 3d fix");
  }
  const double delta =
      static_cast<double>(buffer.size() - anchor_samples_);
  if (gate_exceeded(delta, config_.max_delta_fraction *
                               static_cast<double>(anchor_samples_))) {
    return fallback(CalFallbackReason::kDelta, "append delta too large");
  }

  try {
    CalFlushDecision d;
    d.source = CalFlushSource::kIncremental;
    d.reason = CalFallbackReason::kNone;
    d.report = calibrate_with_sweep(
        buffer, config_.physical_center, config_.calibration, &ws_,
        [this](const signal::PhaseProfile& profile,
               const AdaptiveConfig& cfg) { return warm_sweep(profile, cfg); });
    d.report_ready = true;
    ++stats_.incremental;
    return d;
  } catch (const WarmAbort& abort) {
    return fallback(abort.reason, abort.detail);
  }
}

AdaptiveResult IncrementalCalibrationSolver::warm_sweep(
    const signal::PhaseProfile& profile, const AdaptiveConfig& cfg) {
  // The anchor ran the 3D sweep; a 2D request means the shared ladder
  // diverged from the anchor's path (3D attempt failed or was rejected)
  // and there is no 2D anchor state to seed from.
  if (cfg.base.target_dim != 3) {
    throw WarmAbort{CalFallbackReason::kSweep, "2d sweep requested"};
  }
  if (cfg.ranges.empty() || cfg.intervals.empty()) {
    throw std::invalid_argument("locate_adaptive: empty candidate lists");
  }
  if (anchor_candidates_.size() != cfg.ranges.size() * cfg.intervals.size()) {
    throw WarmAbort{CalFallbackReason::kSweep, "sweep grid changed"};
  }

  std::vector<AdaptiveCandidate> candidates;
  candidates.reserve(anchor_candidates_.size());
  std::size_t idx = 0;
  for (double range : cfg.ranges) {
    const auto windowed =
        restrict_to_x_range(profile, cfg.range_center_x, range);
    for (double interval : cfg.intervals) {
      const AnchorCandidate& anchor = anchor_candidates_[idx++];
      AdaptiveCandidate cand;
      cand.range = range;
      cand.interval = interval;
      const LocalizerConfig lc = adaptive_cell_config(cfg, interval, windowed);
      try {
        cand.result = warm_candidate(windowed, lc, anchor);
        cand.usable = adaptive_candidate_usable(cand.result, cfg);
      } catch (const std::exception&) {
        // Same verdict the batch sweep reaches: these throws come from the
        // shared prepare/pairing/full-row code, deterministic in the data.
        cand.usable = false;
      }
      candidates.push_back(std::move(cand));
    }
  }
  return finalize_adaptive_sweep(std::move(candidates), cfg);
}

LocalizationResult IncrementalCalibrationSolver::warm_candidate(
    const signal::PhaseProfile& windowed, const LocalizerConfig& lc,
    const AnchorCandidate& anchor) {
  const LinearLocalizer loc(lc);
  const auto pairs = ladder_pairs(windowed, lc.pair_interval,
                                  lc.pair_tolerance, lc.pair_stride);
  TrajectoryFrame frame;
  const LinearSystem sys = loc.prepare_system(windowed, pairs, frame);

  const RansacOptions& options = lc.ransac;
  ws_.load(sys.a, sys.k);
  const std::size_t n = ws_.rows();
  const std::size_t p = ws_.cols();

  SolveOutcome oc;
  oc.ws_holds_system = lc.workspace != nullptr;

  if (n < p + 3) {
    // Too few rows for subset sampling: the batch solver short-circuits to
    // the full-row robust fallback before any tournament randomness, so
    // this branch is data-deterministic and safe to reproduce exactly.
    RansacResult rr;
    ransac_full_row_fallback(ws_, options, 0, rr);
    oc.solution = std::move(rr.solution);
    oc.inlier_fraction = rr.inlier_fraction;
    oc.consensus = rr.consensus;
    oc.consensus_scale = rr.scale;
    oc.consensus_threshold = rr.threshold;
    return loc.assemble_result(windowed, frame, sys, pairs.size(), oc);
  }

  if (n < config_.min_rows) {
    throw WarmAbort{CalFallbackReason::kRows, "candidate below row floor"};
  }
  if (!anchor.consensus || p != frame.rank + 1) {
    // No consensus solution to seed this cell from (the anchor cell threw,
    // fell back, or solved a different unknown layout).
    throw WarmAbort{CalFallbackReason::kSweep, "anchor cell not consensus"};
  }

  // Alias-degeneracy gate. A pair whose endpoints sit on the same scan line
  // (identical y/z) is exactly consistent with every rotation of the tag
  // about that line, so when one line contributes a majority of the pairs
  // the LMedS median can tie between the true basin and an alias and the
  // tournament winner is decided by ulps — unreproducible without running
  // the tournament.
  if (pairs.size() >= 2) {
    struct LineCount {
      double y, z;
      std::size_t count;
    };
    LineCount lines[8];
    std::size_t n_lines = 0;
    std::size_t max_line = 0;
    for (const auto& pr : pairs) {
      const auto& a = windowed[pr.first].position;
      const auto& b = windowed[pr.second].position;
      if (a[1] != b[1] || a[2] != b[2]) continue;  // cross-line pair
      std::size_t li = 0;
      for (; li < n_lines; ++li) {
        if (lines[li].y == a[1] && lines[li].z == a[2]) break;
      }
      if (li == n_lines) {
        if (n_lines == 8) continue;  // many distinct lines: no dominance
        lines[n_lines++] = {a[1], a[2], 0};
      }
      lines[li].count++;
      max_line = std::max(max_line, lines[li].count);
    }
    const double frac =
        static_cast<double>(max_line) / static_cast<double>(pairs.size());
    if (frac >= config_.max_single_line_fraction) {
      throw WarmAbort{CalFallbackReason::kDrift,
                      "single scan line dominates window pairs"};
    }
  }

  // Seed from the anchor candidate's *world* position: express it in this
  // flush's trajectory frame (frames drift as samples append, so a stored
  // local solution would be stale; a world point is not).
  double x[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  {
    const auto local = frame.to_local(anchor.position);
    for (std::size_t c = 0; c < frame.rank; ++c) x[c] = local[c];
    x[frame.rank] = linalg::distance(
        anchor.position, windowed[sys.reference_index].position);
  }

  // Mask/OLS fixpoint: residuals at x -> LMedS-style scale and threshold
  // -> consensus mask -> OLS on the mask -> repeat until the mask repeats.
  residuals_.resize(n);
  scratch_.resize(n);
  mask_.assign(n, 0);
  prev_mask_.assign(n, 0);
  double sigma = 0.0;
  double threshold = 0.0;
  std::size_t count = 0;
  bool stable = false;
  for (std::size_t sweep = 0; sweep < config_.max_fixpoint_sweeps; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = ws_.row(i);
      double s = 0.0;
      for (std::size_t c = 0; c < p; ++c) s += row[c] * x[c];
      const double r = s - ws_.rhs(i);
      residuals_[i] = r;
      scratch_[i] = r * r;
    }
    const double med =
        linalg::median_in_place(scratch_.data(), scratch_.data() + n);
    // Same scale/threshold derivation as the batch consensus cut (LMedS
    // small-sample-corrected sigma, 2.5 sigma with the 1e-12 floor).
    sigma = 1.4826 * (1.0 + 5.0 / static_cast<double>(n - p)) *
            std::sqrt(med);
    threshold = options.inlier_threshold > 0.0
                    ? options.inlier_threshold
                    : std::max(2.5 * sigma, 1e-12);
    if (!std::isfinite(threshold)) {
      throw WarmAbort{CalFallbackReason::kDrift, "non-finite threshold"};
    }

    count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool in = std::abs(residuals_[i]) <= threshold;
      mask_[i] = in ? 1 : 0;
      if (in) ++count;
    }
    if (sweep > 0 && mask_ == prev_mask_) {
      stable = true;
      break;
    }
    prev_mask_ = mask_;

    if (count < p) {
      throw WarmAbort{CalFallbackReason::kDrift, "mask starved mid-fixpoint"};
    }
    linalg::SmallGram g;
    g.reset(p);
    double rhs[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
    accumulate_masked(ws_, mask_.data(), g, rhs);
    g.mirror();
    linalg::SmallCholesky chol;
    if (!small_cholesky_factor(g, chol)) {
      throw WarmAbort{CalFallbackReason::kDrift, "masked gram not spd"};
    }
    small_cholesky_solve(chol, rhs, x);
  }
  if (!stable) {
    throw WarmAbort{CalFallbackReason::kDrift, "mask fixpoint did not settle"};
  }

  // Margin band: the warm mask can only be trusted when no row sits close
  // enough to the cut for the batch tournament to classify it differently.
  // Two regimes:
  //  - Floor regime (2.5*sigma below the 1e-12 floor): the cut is made
  //    against *rounding noise*, and the tournament evaluates residuals at
  //    a subset solution whose own rounding error inflates them — a
  //    relative margin is meaningless there. Require a hard decades-wide
  //    gap instead: every masked row far below the floor, every rejected
  //    row far above it.
  //  - Scale regime: the warm and tournament thresholds differ only by
  //    their best-candidate residuals; a relative band around the cut
  //    covers that.
  const bool floor_active = 2.5 * sigma <= 1e-12;
  if (floor_active) {
    const double gap_lo = threshold / config_.floor_gap;
    const double gap_hi = threshold * config_.floor_gap;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = std::abs(residuals_[i]);
      if (r > gap_lo && r < gap_hi) {
        throw WarmAbort{CalFallbackReason::kDrift,
                        "rounding residual near consensus floor"};
      }
    }
  } else {
    const double band_lo = threshold * (1.0 - config_.threshold_margin);
    const double band_hi = threshold * (1.0 + config_.threshold_margin);
    for (std::size_t i = 0; i < n; ++i) {
      const double r = std::abs(residuals_[i]);
      if (r >= band_lo && r <= band_hi) {
        throw WarmAbort{CalFallbackReason::kDrift, "residual in threshold margin band"};
      }
    }
  }

  // Robust-scale drift vs the anchor candidate. Below the threshold floor
  // the scale does not influence the cut at all, so it is exempt.
  if (std::max(2.5 * sigma, 2.5 * anchor.consensus_scale) > 1e-12) {
    if (!(anchor.consensus_scale > 0.0) ||
        gate_exceeded(std::abs(sigma / anchor.consensus_scale - 1.0),
                      config_.scale_drift_max)) {
      throw WarmAbort{CalFallbackReason::kDrift, "robust scale drifted from anchor"};
    }
  }

  // The batch consensus branch also requires a healthy mask; a mask this
  // thin means the batch solver's *branch choice* (consensus vs full-row
  // fallback) cannot be predicted without the tournament — fall back.
  if (count < p + 1 ||
      static_cast<double>(count) <
          options.min_inlier_fraction * static_cast<double>(n)) {
    throw WarmAbort{CalFallbackReason::kDrift, "consensus mask too thin"};
  }

  // Exact batch refit on the consensus rows.
  linalg::IrlsOptions irls = options.irls;
  irls.loss = options.refit_loss;
  linalg::LstsqResult& sol = oc.solution;
  if (linalg::solve_irls_masked(ws_, mask_.data(), count, irls, sol) !=
      linalg::SolveStatus::kOk) {
    throw WarmAbort{CalFallbackReason::kDrift, "masked refit failed"};
  }

  // IRLS fixpoint verification. sol.weights are the weights the final
  // accepted solve used (derived from the previous iterate's residuals);
  // re-deriving weights from the final residuals must land within the
  // convergence lag, or the refit stopped outside its fixpoint basin.
  const auto w_check = linalg::robust_residual_weights(
      sol.residuals, irls.loss, irls.tuning, irls.min_sigma);
  double weight_drift = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    weight_drift =
        std::max(weight_drift, std::abs(w_check[i] - sol.weights[i]));
  }
  if (gate_exceeded(weight_drift, config_.weight_drift_max)) {
    throw WarmAbort{CalFallbackReason::kDrift, "irls weight fixpoint drifted"};
  }

  // Weighted-gram re-solve: assemble the refit's weighted normal equations
  // with rank-1 weighted appends, then *re-weight in place* to the
  // re-derived weights (O(changed rows), the incremental kernel's reason to
  // exist) and confirm the solution barely moves. Catches a refit whose
  // normal equations are too ill-conditioned for the fixpoint to mean
  // anything, and bounds accumulated cancellation.
  normals_.reset(p);
  {
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask_[i]) continue;
      normals_.append_weighted(ws_.row(i), ws_.rhs(i), sol.weights[k]);
      ++k;
    }
    k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask_[i]) continue;
      if (w_check[k] != sol.weights[k]) {
        normals_.reweight(ws_.row(i), ws_.rhs(i), sol.weights[k], w_check[k]);
      }
      ++k;
    }
  }
  if (gate_exceeded(normals_.cancellation(), config_.max_cancellation)) {
    throw WarmAbort{CalFallbackReason::kCancellation, "weighted gram cancelled"};
  }
  double xw[linalg::kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  if (!normals_.solve(xw)) {
    throw WarmAbort{CalFallbackReason::kCancellation, "weighted gram not solvable"};
  }
  double solution_drift = 0.0;
  for (std::size_t c = 0; c < p; ++c) {
    solution_drift = std::max(solution_drift, std::abs(xw[c] - sol.x[c]));
  }
  if (gate_exceeded(solution_drift, config_.solution_drift_max)) {
    throw WarmAbort{CalFallbackReason::kDrift, "weighted re-solve drifted"};
  }

  oc.inlier_fraction = static_cast<double>(count) / static_cast<double>(n);
  oc.consensus = true;
  oc.consensus_scale = sigma;
  oc.consensus_threshold = threshold;
  return loc.assemble_result(windowed, frame, sys, pairs.size(), oc);
}

}  // namespace lion::core
