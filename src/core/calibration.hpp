// Phase calibration (Sec. IV-C): the paper's end goal.
//
// Phase-center calibration pinpoints the antenna's electrical phase center
// by localizing it with a tag scan; the displacement from the ruler-measured
// physical center is then applied to all downstream geometry. Phase-offset
// calibration (Eq. 17) extracts the constant hardware rotation
// theta_T + theta_R so multi-antenna phase-difference methods can cancel it.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/localizer.hpp"
#include "signal/profile.hpp"
#include "signal/sanitize.hpp"
#include "signal/stitch.hpp"
#include "sim/reader.hpp"

namespace lion::core {

/// Result of phase-center calibration for one antenna.
struct CenterCalibration {
  Vec3 estimated_center{};  ///< localized electrical phase center
  Vec3 displacement{};      ///< estimated_center - believed physical center
  AdaptiveResult details;   ///< full adaptive-sweep record
};

/// Calibrate the phase center: localize the antenna in 3D from a
/// preprocessed scan profile (typically the Fig. 11 three-line rig) using
/// the adaptive sweep, and report the displacement from the believed
/// physical center.
CenterCalibration calibrate_phase_center(const signal::PhaseProfile& profile,
                                         const Vec3& physical_center,
                                         AdaptiveConfig config);

/// Phase-offset calibration (Eq. 17): the circular mean over samples of
/// (measured wrapped phase - distance-predicted phase), using the
/// *calibrated* phase center for distances. Samples carry raw wrapped
/// phases, not unwrapped ones. Returns a value in [0, 2*pi). Throws
/// std::invalid_argument on empty input.
double calibrate_phase_offset(const std::vector<sim::PhaseSample>& samples,
                              const Vec3& phase_center,
                              double wavelength = rf::kDefaultWavelength);

/// Complete calibration record for one antenna.
struct AntennaCalibration {
  std::size_t antenna_index = 0;
  CenterCalibration center;
  double phase_offset = 0.0;  ///< theta_T + theta_R estimate [rad]
};

/// Offsets are only meaningful relatively (the tag's theta_T is shared and
/// cannot be split out, Sec. IV-C2): difference of two calibrations'
/// offsets, wrapped to [0, 2*pi).
double relative_offset(const AntennaCalibration& a,
                       const AntennaCalibration& b);

/// Correct a wrapped phase measurement with a calibrated offset: returns
/// the distance-only phase wrapped to [0, 2*pi).
double remove_offset(double measured_phase, double phase_offset);

// ---------------------------------------------------------------------------
// Robust calibration path: raw stream in, structured report out — no throws.
// ---------------------------------------------------------------------------

/// Outcome classification of a robust calibration run.
enum class CalibrationStatus {
  kOk,                  ///< full 3D calibration succeeded
  kDegraded2D,          ///< 3D geometry degenerate; planar fallback used
  kNoSamples,           ///< empty stream, or nothing survived sanitization
  kDegenerateGeometry,  ///< scan spans too few directions even for 2D
  kSolverFailure,       ///< no parameter combination produced a solution
};

/// Short name for CLI / bench output.
const char* calibration_status_name(CalibrationStatus status);

/// Everything a deployment dashboard needs to decide whether to trust (or
/// re-run) a calibration.
struct CalibrationDiagnostics {
  signal::SanitizeReport sanitize;  ///< what input scrubbing repaired
  std::size_t profile_points = 0;   ///< points surviving preprocessing
  double condition = 0.0;        ///< best selected window's condition number
  double inlier_fraction = 1.0;  ///< smallest consensus fraction used
  double mean_residual = 0.0;    ///< best window's mean equation residual
  double rms_residual = 0.0;     ///< best window's RMS equation residual
  double position_sigma = 0.0;   ///< GDOP-style 1-sigma position bound [m]
  std::string message;           ///< human-readable detail on degradations
};

/// Structured result of the no-throw calibration entry point.
struct CalibrationReport {
  CalibrationStatus status = CalibrationStatus::kSolverFailure;
  CenterCalibration center;   ///< valid when ok()
  double phase_offset = 0.0;  ///< Eq. 17 offset [rad]; valid when ok()
  CalibrationDiagnostics diagnostics;

  /// True when the report carries a usable estimate (possibly degraded).
  bool ok() const {
    return status == CalibrationStatus::kOk ||
           status == CalibrationStatus::kDegraded2D;
  }
};

/// Adaptive-sweep defaults for the robust path: consensus solving instead
/// of the paper's plain Gaussian reweighting.
AdaptiveConfig robust_adaptive_defaults();

/// Preprocess defaults for the robust path: sanitization plus median-based
/// outlier rejection (off in the paper-faithful default config).
signal::PreprocessConfig robust_preprocess_defaults();

/// Configuration of the robust calibration path.
struct RobustCalibrationConfig {
  AdaptiveConfig adaptive = robust_adaptive_defaults();
  signal::PreprocessConfig preprocess = robust_preprocess_defaults();
  /// Final-answer degeneracy gate: when every accepted 3D window's system
  /// is worse-conditioned than this, the planar fallback is taken.
  double max_condition = 1e5;
  /// Permit the automatic 3D -> 2D fallback when the 3D solve is
  /// degenerate (single-line scans, near-collinear rigs).
  bool allow_2d_fallback = true;
};

/// Full calibration from a *raw* sample stream: sanitize, preprocess,
/// adaptive-localize with a consensus solver, fall back from 3D to 2D on
/// degenerate geometry, and compute the Eq.-17 phase offset. Never throws;
/// every failure mode maps to a CalibrationStatus with diagnostics.
///
/// `workspace` (optional, non-owning) is solver scratch threaded to every
/// RANSAC/IRLS solve of the run; passing a long-lived workspace makes the
/// steady-state solver core allocation-free across calls without changing
/// any result bit. It must not be shared across threads.
CalibrationReport calibrate_antenna_robust(
    const std::vector<sim::PhaseSample>& samples, const Vec3& physical_center,
    const RobustCalibrationConfig& config = {},
    linalg::SolverWorkspace* workspace = nullptr);

/// The adaptive sweep a robust calibration runs for one attempt (3D, and
/// possibly the 2D fallback). Receives the preprocessed profile and the
/// fully-derived sweep config (target_dim, side hint, workspace already
/// applied). Must behave like locate_adaptive: return a result or throw.
using AdaptiveSweepFn = std::function<AdaptiveResult(
    const signal::PhaseProfile&, const AdaptiveConfig&)>;

/// calibrate_antenna_robust with the sweep injected: every other stage —
/// preprocessing, degeneracy gating, the 3D->2D fallback ladder, the
/// condition gate, diagnostics, and the Eq.-17 offset — is this shared
/// code, so two calls whose sweeps return bit-identical results produce
/// byte-identical reports. calibrate_antenna_robust passes
/// locate_adaptive; the incremental calibrate solver passes its
/// warm-started sweep. Exceptions not derived from std::exception escape
/// (the incremental path's abort signal rides on that).
CalibrationReport calibrate_with_sweep(
    const std::vector<sim::PhaseSample>& samples, const Vec3& physical_center,
    const RobustCalibrationConfig& config, linalg::SolverWorkspace* workspace,
    const AdaptiveSweepFn& sweep);

}  // namespace lion::core
