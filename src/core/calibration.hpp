// Phase calibration (Sec. IV-C): the paper's end goal.
//
// Phase-center calibration pinpoints the antenna's electrical phase center
// by localizing it with a tag scan; the displacement from the ruler-measured
// physical center is then applied to all downstream geometry. Phase-offset
// calibration (Eq. 17) extracts the constant hardware rotation
// theta_T + theta_R so multi-antenna phase-difference methods can cancel it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/adaptive.hpp"
#include "core/localizer.hpp"
#include "signal/profile.hpp"
#include "sim/reader.hpp"

namespace lion::core {

/// Result of phase-center calibration for one antenna.
struct CenterCalibration {
  Vec3 estimated_center{};  ///< localized electrical phase center
  Vec3 displacement{};      ///< estimated_center - believed physical center
  AdaptiveResult details;   ///< full adaptive-sweep record
};

/// Calibrate the phase center: localize the antenna in 3D from a
/// preprocessed scan profile (typically the Fig. 11 three-line rig) using
/// the adaptive sweep, and report the displacement from the believed
/// physical center.
CenterCalibration calibrate_phase_center(const signal::PhaseProfile& profile,
                                         const Vec3& physical_center,
                                         AdaptiveConfig config);

/// Phase-offset calibration (Eq. 17): the circular mean over samples of
/// (measured wrapped phase - distance-predicted phase), using the
/// *calibrated* phase center for distances. Samples carry raw wrapped
/// phases, not unwrapped ones. Returns a value in [0, 2*pi). Throws
/// std::invalid_argument on empty input.
double calibrate_phase_offset(const std::vector<sim::PhaseSample>& samples,
                              const Vec3& phase_center,
                              double wavelength = rf::kDefaultWavelength);

/// Complete calibration record for one antenna.
struct AntennaCalibration {
  std::size_t antenna_index = 0;
  CenterCalibration center;
  double phase_offset = 0.0;  ///< theta_T + theta_R estimate [rad]
};

/// Offsets are only meaningful relatively (the tag's theta_T is shared and
/// cannot be split out, Sec. IV-C2): difference of two calibrations'
/// offsets, wrapped to [0, 2*pi).
double relative_offset(const AntennaCalibration& a,
                       const AntennaCalibration& b);

/// Correct a wrapped phase measurement with a calibrated offset: returns
/// the distance-only phase wrapped to [0, 2*pi).
double remove_offset(double measured_phase, double phase_offset);

}  // namespace lion::core
