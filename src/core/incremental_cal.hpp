// Incremental calibrate-mode flushes.
//
// PR 7 made track-mode poses O(1); a calibrate `!flush` still re-ran the
// full robust pipeline (LMedS-RANSAC tournament + Huber-IRLS refit per
// sweep candidate) over the whole session buffer. The hard part of doing
// better is that IRLS reweighting is nonlinear in the residuals and the
// consensus mask is the output of a 64-subset sampling tournament: neither
// can be "updated" by a rank-1 identity. What *can* be reused is the
// anchor solution of the previous full solve:
//
//  - Memo tier: calibrate buffers are append-only (the session cap drops
//    new samples, never old ones), so when the buffer digest still matches
//    the anchor snapshot, the anchor report IS the batch answer —
//    re-serialized bytes, O(size-check + digest) work.
//  - Warm tier: for a small append delta, each sweep candidate re-derives
//    its consensus mask by thresholding current-system residuals against
//    the anchor candidate's solution, iterating the mask/OLS fixpoint to
//    convergence. The refit is then the exact batch refit
//    (solve_irls_masked on the exact batch rows), the condition / GDOP /
//    selection / averaging all run through the shared batch code — so
//    whenever the re-derived mask equals the mask the tournament would
//    cut, the candidate result is bit-identical to the batch result.
//
// Mask equality cannot be proven cheaply on noisy data (the tournament
// winner is itself a noisy fit and flips borderline rows), so the warm
// tier is *gated*, not assumed: a relative ambiguity band around the
// consensus threshold must be empty of residuals, the IRLS fixpoint must
// verify (re-derived weight vector within weight_drift_max of the refit's,
// and a weighted-gram re-solve — maintained by IncrementalNormals
// weighted appends with O(changed-rows) re-weight downdates — within
// solution_drift_max of the refit), the robust scale must not have
// drifted from the anchor's, and the weighted gram must not have
// cancelled away. Any gate trip falls back to the full batch pipeline,
// byte-identically, with the reason counted. The differential suite
// (tests/core/test_incremental_cal.cpp) referees all of it against fresh
// full-pipeline solves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "linalg/small.hpp"
#include "sim/reader.hpp"

namespace lion::core {

/// How a calibrate flush was (or must be) answered.
enum class CalFlushSource {
  kMemo,         ///< buffer unchanged since the anchor: cached report
  kIncremental,  ///< warm-started sweep passed every gate
  kFallback,     ///< full batch pipeline required
};

/// Why the incremental path declined a flush.
enum class CalFallbackReason {
  kNone,          ///< not a fallback
  kCold,          ///< no anchor yet (first flush, or after reset)
  kStatus,        ///< anchor report was not a clean 3D fix
  kCarve,         ///< buffer is not an append extension of the anchor
  kDelta,         ///< append delta too large relative to the anchor
  kRows,          ///< a candidate system fell below the warm row floor
  kDrift,         ///< mask/fixpoint/scale drift outside the gates
  kCancellation,  ///< weighted gram cancelled beyond the gate
  kSweep,         ///< sweep structure diverged (2D fallback, no usable)
};

const char* cal_flush_source_name(CalFlushSource source);
const char* cal_fallback_reason_name(CalFallbackReason reason);

/// Gate knobs of the incremental calibrate solver. The defaults are tuned
/// against the 200-seed differential suite: tight enough that every flush
/// the warm tier answers is bit-identical to the batch answer, loose
/// enough that clean steady streams stay on the warm tier.
struct IncrementalCalConfig {
  Vec3 physical_center{};
  RobustCalibrationConfig calibration{};
  /// Relative ambiguity band around the derived consensus threshold: any
  /// row with |r| in [thr*(1-band), thr*(1+band)] could plausibly flip
  /// under a different tournament winner, so the warm mask is distrusted.
  double threshold_margin = 0.35;
  /// Robust-scale drift vs the anchor candidate, |scale/anchor - 1|.
  double scale_drift_max = 0.25;
  /// Floor-regime margin: when the consensus threshold sits on the 1e-12
  /// floor the cut is made against rounding noise, so instead of a
  /// relative band every masked row must be below threshold/floor_gap and
  /// every rejected row above threshold*floor_gap.
  double floor_gap = 25.0;
  /// IRLS fixpoint gate: max |w_rederived - w_refit| over consensus rows.
  /// (The refit stops at ||dx||_inf < irls.tolerance, so the weights it
  /// used lag the final residuals by up to one Lipschitz step — the gate
  /// is sized for that lag, not for exact equality.)
  double weight_drift_max = 1e-6;
  /// IRLS fixpoint gate: max |x_weighted_gram - x_refit| after the
  /// re-weighted incremental-normals re-solve.
  double solution_drift_max = 1e-6;
  /// Alias-degeneracy gate: samples on a single scan line cannot tell the
  /// tag from its rotation about that line, so every same-line pair is
  /// *exactly* consistent with a whole alias family. When one line
  /// contributes at least this fraction of a window's pairs, the LMedS
  /// median can tie between basins and the tournament tie-break is
  /// arbitrary — the warm path refuses such windows.
  double max_single_line_fraction = 0.45;
  /// Append delta (samples) tolerated relative to the anchor buffer size.
  double max_delta_fraction = 0.5;
  /// Cancellation ratio above which the weighted gram is distrusted.
  double max_cancellation = 1e6;
  /// Minimum rows a warm candidate system may have (below it the batch
  /// branch structure is too easy to flip; fall back instead).
  std::size_t min_rows = 8;
  /// Mask/OLS fixpoint sweeps before declaring drift.
  std::size_t max_fixpoint_sweeps = 4;
};

/// Counters of every decision the solver made (monotone).
struct CalFlushStats {
  std::uint64_t flushes = 0;
  std::uint64_t memo = 0;
  std::uint64_t incremental = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t fb_cold = 0;
  std::uint64_t fb_status = 0;
  std::uint64_t fb_carve = 0;
  std::uint64_t fb_delta = 0;
  std::uint64_t fb_rows = 0;
  std::uint64_t fb_drift = 0;
  std::uint64_t fb_cancellation = 0;
  std::uint64_t fb_sweep = 0;
};

/// Outcome of a flush decision.
struct CalFlushDecision {
  CalFlushSource source = CalFlushSource::kFallback;
  CalFallbackReason reason = CalFallbackReason::kCold;
  /// True when `report` carries the answer (memo / incremental). False
  /// means the caller must run calibrate_antenna_robust itself and then
  /// install_anchor() the result.
  bool report_ready = false;
  /// Human-readable detail on a fallback (which gate tripped); empty
  /// otherwise. Forensic only — never part of the answer bytes.
  std::string detail;
  CalibrationReport report;
};

/// Order-dependent FNV-1a digest of a sample prefix — the memo/carve
/// detector (bitwise field identity, no float comparisons).
std::uint64_t cal_buffer_digest(const std::vector<sim::PhaseSample>& buffer,
                                std::size_t count);

/// Per-session incremental calibrate solver. Not thread-safe; the serving
/// layer serializes access under its session lock. All solver scratch is
/// owned here, so steady-state flushes stay allocation-light.
class IncrementalCalibrationSolver {
 public:
  explicit IncrementalCalibrationSolver(IncrementalCalConfig config);

  /// Decide how to answer a flush over `buffer` (the session's full
  /// calibrate buffer). Memo/warm decisions carry the finished report;
  /// fallback decisions carry the reason. Deterministic: the same solver
  /// state and buffer always produce the same decision and bytes.
  CalFlushDecision flush(const std::vector<sim::PhaseSample>& buffer);

  /// Install the result of a full batch solve over `buffer` as the new
  /// anchor (the caller ran calibrate_antenna_robust on exactly this
  /// buffer). Also called during journal replay to rebuild state.
  void install_anchor(const std::vector<sim::PhaseSample>& buffer,
                      const CalibrationReport& report);

  /// Drop the anchor (the next flush is kCold). Used when a session is
  /// restored without a journaled anchor.
  void reset();

  bool has_anchor() const { return anchor_valid_; }
  std::size_t anchor_samples() const { return anchor_samples_; }
  const CalibrationReport& anchor_report() const { return anchor_report_; }
  const CalFlushStats& stats() const { return stats_; }
  const IncrementalCalConfig& config() const { return config_; }

 private:
  struct AnchorCandidate {
    bool usable = false;
    bool consensus = false;
    Vec3 position{};
    double consensus_scale = 0.0;
  };

  CalFlushDecision fallback(CalFallbackReason reason, const char* detail);
  AdaptiveResult warm_sweep(const signal::PhaseProfile& profile,
                            const AdaptiveConfig& cfg);
  LocalizationResult warm_candidate(const signal::PhaseProfile& windowed,
                                    const LocalizerConfig& lc,
                                    const AnchorCandidate& anchor);

  IncrementalCalConfig config_;
  CalFlushStats stats_;

  bool anchor_valid_ = false;
  std::size_t anchor_samples_ = 0;
  std::uint64_t anchor_digest_ = 0;
  CalibrationReport anchor_report_;
  std::vector<AnchorCandidate> anchor_candidates_;

  linalg::SolverWorkspace ws_;
  linalg::IncrementalNormals normals_;
  // Warm-path scratch (sized per candidate, reused across flushes).
  std::vector<double> residuals_;
  std::vector<double> scratch_;
  std::vector<char> mask_;
  std::vector<char> prev_mask_;
};

}  // namespace lion::core
