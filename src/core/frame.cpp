#include "core/frame.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace lion::core {

std::vector<double> TrajectoryFrame::to_local(const Vec3& p) const {
  std::vector<double> local(axes.size());
  const Vec3 rel = p - centroid;
  for (std::size_t k = 0; k < axes.size(); ++k) local[k] = rel.dot(axes[k]);
  return local;
}

Vec3 TrajectoryFrame::from_local(const std::vector<double>& local,
                                 double perp) const {
  if (local.size() != axes.size()) {
    throw std::invalid_argument("TrajectoryFrame::from_local: size mismatch");
  }
  Vec3 p = centroid;
  for (std::size_t k = 0; k < axes.size(); ++k) p += local[k] * axes[k];
  if (has_perpendicular) p += perp * perpendicular;
  return p;
}

TrajectoryFrame analyze_frame(const signal::PhaseProfile& profile,
                              std::size_t target_dim, double rank_tol) {
  if (target_dim != 2 && target_dim != 3) {
    throw std::invalid_argument("analyze_frame: target_dim must be 2 or 3");
  }
  if (profile.size() < 2) {
    throw std::invalid_argument("analyze_frame: need at least two positions");
  }

  const std::size_t dim = target_dim;
  TrajectoryFrame frame;

  // Centroid (z forced to the scan plane's mean even in 2D mode so that
  // from_local reproduces input points).
  Vec3 c{};
  for (const auto& p : profile) c += p.position;
  c /= static_cast<double>(profile.size());
  frame.centroid = c;
  if (dim == 2) frame.centroid[2] = c[2];  // keep mean z as the plane height

  // Covariance over the first `dim` coordinates.
  linalg::Matrix cov(dim, dim);
  for (const auto& p : profile) {
    const Vec3 rel = p.position - c;
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j <= i; ++j) cov(i, j) += rel[i] * rel[j];
    }
  }
  cov *= 1.0 / static_cast<double>(profile.size());
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i + 1; j < dim; ++j) cov(i, j) = cov(j, i);
  }

  const auto eig = linalg::symmetric_eigen(cov);
  frame.rank = linalg::spd_rank(eig, rank_tol);

  for (std::size_t k = 0; k < frame.rank; ++k) {
    Vec3 axis{};
    for (std::size_t i = 0; i < dim; ++i) axis[i] = eig.vectors(i, k);
    frame.axes.push_back(axis.normalized());
    frame.spread.push_back(std::sqrt(std::max(0.0, eig.values[k])));
  }

  // Perpendicular direction for a one-dimension deficit.
  if (frame.rank + 1 == target_dim) {
    if (target_dim == 2) {
      // In-plane normal of the scan line: rotate the axis by 90 degrees.
      const Vec3& u = frame.axes[0];
      frame.perpendicular = Vec3{-u[1], u[0], 0.0}.normalized();
    } else {
      frame.perpendicular =
          cross(frame.axes[0], frame.axes[1]).normalized();
    }
    frame.has_perpendicular = true;
  }
  return frame;
}

}  // namespace lion::core
