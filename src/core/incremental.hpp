// Incremental per-session track solver: O(new rows) pose updates.
//
// The serve path's track mode re-runs the full window pipeline
// (preprocess -> PCA frame -> pairing -> build_system -> WLS) on every
// completed window — O(window) work per fix, which caps per-read tracking
// at toy rates. This module maintains the radical-line normal equations
// *incrementally* so a fresh pose estimate (`tick()`) costs O(1) after
// O(1) amortized work per appended sample:
//
//   - Fixed-frame row construction. The conveyor geometry makes the
//     virtual scan collinear: the equivalent moving-antenna profile is
//     P(t) = A - v (t - t_base) d  (A = antenna phase center, d = unit
//     belt direction). With the 1-D local coordinate q(t) = -v (t - t_base)
//     and the *first* sample of the current epoch as the reference datum
//     (q_ref = 0, theta_ref cached by value), a row depends only on its
//     two samples' timestamps and unwrapped phases — never on the window
//     boundaries. Window slides therefore retire rows unchanged instead
//     of rewriting them.
//   - Rank-1 update / downdate of the normal equations
//     (linalg::IncrementalNormals): appends add row products, retired
//     rows leave by subtracting the identical products. The residual RMS
//     of the current estimate is available in O(1) from the maintained
//     quadratic form.
//   - Sliding-window re-accumulation (`rebuild`) when downdating turns
//     ill-conditioned (cancellation ratio), when the datum sample ages
//     out far enough, or periodically — re-unwraps, re-pairs, and
//     re-accumulates from the surviving samples, and refreshes the
//     consensus inlier set with a RANSAC warm-started from the previous
//     mask (core::ransac_solve_warm).
//   - A residual gate: `tick()` reports fallback=true (instead of a pose)
//     when the incremental estimate's RMS drifts beyond a factor of the
//     rebuild-time baseline, when too few rows survive, or when the
//     normal equations lose positive definiteness. The caller (the serve
//     layer) then runs the full-pipeline window solve — byte-identical to
//     the batch path — so the fast path can never emit garbage silently.
//
// Determinism: every mutation (push / retire / clear) is a pure function
// of the sample stream — rebuild triggers count samples and measure
// accumulated numerics, never wall time — and `tick()` is const. Journal
// replay of the same sample stream therefore reconstructs the exact
// solver state, which is what makes the crash-recovery byte-identity
// suite extendable to the `!tick` stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/ransac.hpp"
#include "linalg/small.hpp"
#include "linalg/vec.hpp"
#include "sim/reader.hpp"

namespace lion::core {

using linalg::Vec3;

/// Knobs of the incremental track solver. The geometry block mirrors
/// TrackerConfig/LocalizerConfig; the gate block is new.
struct IncrementalTrackConfig {
  Vec3 antenna_phase_center{};
  Vec3 belt_direction{1.0, 0.0, 0.0};  ///< normalized by the constructor
  double belt_speed = 0.1;             ///< [m/s], > 0
  double wavelength = 0.0;             ///< carrier wavelength [m], > 0
  double pair_interval = 0.2;          ///< arc distance between paired samples
  double pair_tolerance = 0.02;
  std::optional<Vec3> side_hint;       ///< sign of the recovered perpendicular

  /// Consensus refresh at rebuild time; rows below this count solve with
  /// plain LS over all rows instead (RANSAC needs headroom to sample).
  RansacOptions ransac{};
  std::size_t ransac_min_rows = 24;

  // --- residual gate / rebuild policy ------------------------------------
  /// tick() recommends fallback when rms > gate_rms_factor *
  /// max(baseline_rms, gate_rms_floor). Row residuals are in m^2 (the
  /// radical-line k units), so the floor is small.
  double gate_rms_factor = 6.0;
  double gate_rms_floor = 1e-4;
  /// Minimum live consensus rows for an incremental pose.
  std::size_t min_rows = 8;
  /// Re-accumulate when IncrementalNormals::cancellation() exceeds this.
  double rebuild_cancellation = 1e6;
  /// Cap on the consensus refresh cadence. The effective cadence doubles —
  /// a rebuild fires after as many appends as there were rows at the last
  /// rebuild — so this cap only bites once the window holds this many rows.
  std::size_t rebuild_every_appends = 4096;
  std::size_t rebuild_every_retires = 4096;
};

/// One incremental pose estimate.
struct TickResult {
  bool valid = false;      ///< a pose was produced
  bool fallback = false;   ///< gate tripped: run the full window solve
  double t = 0.0;          ///< timestamp of the newest sample [s]
  Vec3 start{};            ///< tag position at the oldest live sample's t
  Vec3 position{};         ///< tag position at t
  double sigma = 0.0;      ///< 1-sigma along-belt uncertainty [m]
  double rms = 0.0;        ///< residual RMS of the estimate [m^2]
  std::size_t rows = 0;    ///< live consensus rows behind the estimate
};

/// Sliding-window incremental solver for one track-mode stream.
class IncrementalTrackSolver {
 public:
  /// Throws std::invalid_argument for a zero belt direction, non-positive
  /// speed/wavelength/interval.
  explicit IncrementalTrackSolver(IncrementalTrackConfig config);

  /// Feed one sample (chronological order). O(1) amortized: appends rows
  /// completed by this sample; occasionally triggers a rebuild.
  void push(const sim::PhaseSample& sample);

  /// Retire the `count` oldest samples (a window slide). Their rows leave
  /// the normal equations via downdate; may trigger a rebuild.
  void retire(std::size_t count);

  /// Drop all state (a track flush drains the window).
  void clear();

  /// Current pose estimate from the maintained normal equations. Const —
  /// ticking never mutates solver state, so replaying the sample stream
  /// alone reconstructs every tick'able state.
  TickResult tick() const;

  // --- conformance hooks (differential / metamorphic suites) -------------
  std::size_t sample_count() const { return samples_.size(); }
  std::size_t row_count() const { return rows_.size(); }
  std::size_t included_rows() const { return normals_.rows(); }
  std::uint64_t rebuilds() const { return rebuilds_; }
  const linalg::IncrementalNormals& normals() const { return normals_; }
  /// Fresh accumulation over the currently included rows — what the
  /// incrementally maintained normals must match to 1e-12.
  linalg::IncrementalNormals batch_normals() const;
  /// Force a sliding-window re-accumulation now (tests only; the serve
  /// path relies exclusively on the sample-driven triggers).
  void force_rebuild() { rebuild(); }

  const IncrementalTrackConfig& config() const { return config_; }

 private:
  struct Sample {
    double t = 0.0;
    double raw_phase = 0.0;   ///< as read (wrapped)
    double unwrapped = 0.0;   ///< streaming unwrap, current epoch datum
    double arc = 0.0;         ///< v * (t - epoch t0): pairing coordinate
  };
  struct Row {
    std::size_t anchor = 0;   ///< global index of the pair's anchor sample
    double a0 = 0.0;          ///< 2 (q_i - q_j)
    double a1 = 0.0;          ///< 2 (dd_i - dd_j)
    double k = 0.0;           ///< q_i^2 - q_j^2 - dd_i^2 + dd_j^2
    bool included = false;    ///< in the consensus set (in the normals)
  };

  const Sample& at(std::size_t global) const {
    return samples_[global - base_index_];
  }
  double delta_d(const Sample& s) const;
  double local_q(const Sample& s) const;
  void append_pairs_for_newest();
  void make_row(std::size_t anchor_global, std::size_t partner_global,
                Row& out) const;
  void append_row(Row row);
  void rebuild();
  void reset_epoch();

  IncrementalTrackConfig config_;
  Vec3 perp_axis_{};  ///< unit normal to the belt used to place the pose

  std::deque<Sample> samples_;
  std::size_t base_index_ = 0;   ///< global index of samples_.front()
  std::deque<Row> rows_;         ///< emission order == increasing anchor

  // Current epoch (reference datum), cached by value so retiring the
  // datum sample cannot invalidate live rows.
  double epoch_t0_ = 0.0;
  double epoch_theta_ref_ = 0.0;
  bool have_epoch_ = false;
  // Streaming unwrap state.
  double unwrap_prev_raw_ = 0.0;
  double unwrap_accum_ = 0.0;
  // Moving pairing cursor (global anchor index).
  std::size_t next_anchor_ = 0;

  linalg::IncrementalNormals normals_;
  // Gate state, refreshed at rebuild time only (kept fixed between
  // rebuilds so inclusion decisions are order-independent enough for the
  // differential suite).
  bool have_baseline_ = false;
  double baseline_rms_ = 0.0;
  double include_threshold_ = 0.0;  ///< |residual| cap for appended rows
  double gate_x_[2] = {0.0, 0.0};   ///< estimate backing the include gate

  std::size_t appends_since_rebuild_ = 0;
  std::size_t retires_since_rebuild_ = 0;
  std::size_t rows_at_rebuild_ = 0;  ///< doubling-cadence anchor
  std::uint64_t rebuilds_ = 0;

  // Scratch for the warm-started consensus refresh (reused across
  // rebuilds; rebuild is the only allocating path at steady state).
  linalg::SolverWorkspace ws_;
  RansacResult ransac_result_;
  std::vector<char> prior_inliers_;
};

}  // namespace lion::core
