#include "core/radical.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "rf/phase_model.hpp"

namespace lion::core {

LinearSystem build_system(const signal::PhaseProfile& profile,
                          const TrajectoryFrame& frame,
                          const std::vector<IndexPair>& pairs,
                          std::size_t reference_index, double wavelength) {
  if (reference_index >= profile.size()) {
    throw std::invalid_argument("build_system: reference index out of range");
  }
  if (pairs.empty()) {
    throw std::invalid_argument("build_system: no pairs");
  }
  LION_OBS_SPAN(obs::Stage::kRadical);
  LION_OBS_COUNT("radical.rows", pairs.size());
  const std::size_t rank = frame.rank;
  const std::size_t cols = rank + 1;

  LinearSystem sys;
  sys.reference_index = reference_index;

  // Per-point distance deltas relative to the reference (Eq. 6).
  const double theta_ref = profile[reference_index].phase;
  sys.delta_d.resize(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    sys.delta_d[i] = rf::phase_to_distance_delta(
        profile[i].phase - theta_ref, wavelength);
  }

  // Local coordinates of every point referenced by a pair (memoized).
  std::vector<std::vector<double>> local(profile.size());
  std::vector<char> have(profile.size(), 0);
  auto local_of = [&](std::size_t idx) -> const std::vector<double>& {
    if (!have[idx]) {
      local[idx] = frame.to_local(profile[idx].position);
      have[idx] = 1;
    }
    return local[idx];
  };

  sys.a = linalg::Matrix(pairs.size(), cols);
  sys.k.resize(pairs.size());

  for (std::size_t row = 0; row < pairs.size(); ++row) {
    const auto [i, j] = pairs[row];
    if (i >= profile.size() || j >= profile.size()) {
      throw std::invalid_argument("build_system: pair index out of range");
    }
    const auto& qi = local_of(i);
    const auto& qj = local_of(j);
    double qi2 = 0.0;
    double qj2 = 0.0;
    for (std::size_t c = 0; c < rank; ++c) {
      sys.a(row, c) = 2.0 * (qi[c] - qj[c]);
      qi2 += qi[c] * qi[c];
      qj2 += qj[c] * qj[c];
    }
    const double ddi = sys.delta_d[i];
    const double ddj = sys.delta_d[j];
    sys.a(row, rank) = 2.0 * (ddi - ddj);
    sys.k[row] = qi2 - qj2 - ddi * ddi + ddj * ddj;
  }
  return sys;
}

}  // namespace lion::core
