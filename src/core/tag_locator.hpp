// Tag localization with a calibrated antenna (Sec. V-C2's conveyor case).
//
// Locating a tag whose *relative* motion is known (a conveyor carries it at
// known speed along a known direction; only the absolute start point is
// unknown) is the mirror image of antenna localization:
//
//   |A - (T0 + s_t)| = |(A - s_t) - T0|
//
// so feeding the localizer a virtual profile of positions A - s_t with the
// same phases estimates the tag start T0 directly — same math, same
// lower-dimension handling (a straight conveyor gives a rank-1 virtual
// scan, so the cross-conveyor coordinate is recovered from d_r).
#pragma once

#include <vector>

#include "core/localizer.hpp"
#include "signal/profile.hpp"

namespace lion::core {

/// One tag-scan observation: known displacement from the (unknown) start
/// position, and the unwrapped phase measured there.
struct TagScanPoint {
  Vec3 displacement{};  ///< tag position minus tag start position
  double phase = 0.0;   ///< unwrapped phase [rad]
};

/// Build the virtual profile A - s_t used to localize the tag start.
signal::PhaseProfile virtual_profile(const Vec3& antenna_phase_center,
                                     const std::vector<TagScanPoint>& scan);

/// Estimate the tag's start position. `config.side_hint` should point into
/// the half-space the tag is known to occupy (e.g. "in front of the
/// antenna"). Throws like LinearLocalizer::locate.
LocalizationResult locate_tag_start(const Vec3& antenna_phase_center,
                                    const std::vector<TagScanPoint>& scan,
                                    const LocalizerConfig& config);

}  // namespace lion::core
