#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/pairing.hpp"

namespace lion::core {

LocalizerConfig adaptive_cell_config(const AdaptiveConfig& config,
                                     double interval,
                                     const signal::PhaseProfile& windowed) {
  LocalizerConfig lc = config.base;
  lc.pair_interval = interval;
  // A fresh reference per window: the configured index refers to the
  // full profile, which may be cropped away.
  if (!lc.reference_index || *lc.reference_index >= windowed.size()) {
    lc.reference_index = windowed.size() / 2;
  }
  return lc;
}

bool adaptive_candidate_usable(const LocalizationResult& result,
                               const AdaptiveConfig& config) {
  return result.equations >= config.min_equations &&
         result.condition <= config.max_condition &&
         std::isfinite(result.position[0]) &&
         std::isfinite(result.position[1]) &&
         std::isfinite(result.position[2]);
}

AdaptiveResult finalize_adaptive_sweep(
    std::vector<AdaptiveCandidate> candidates, const AdaptiveConfig& config) {
  AdaptiveResult out;
  out.candidates = std::move(candidates);

  std::vector<const AdaptiveCandidate*> usable;
  for (const auto& c : out.candidates) {
    if (c.usable) usable.push_back(&c);
  }
  if (usable.empty()) {
    throw std::invalid_argument(
        "locate_adaptive: no parameter combination produced a solution");
  }

  std::sort(usable.begin(), usable.end(),
            [](const AdaptiveCandidate* a, const AdaptiveCandidate* b) {
              return std::abs(a->result.mean_residual) <
                     std::abs(b->result.mean_residual);
            });

  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(config.keep_fraction *
                       static_cast<double>(usable.size()))));

  Vec3 avg{};
  double avg_dr = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    avg += usable[i]->result.position;
    avg_dr += usable[i]->result.reference_distance;
    out.selected.push_back(*usable[i]);
  }
  out.position = avg / static_cast<double>(keep);
  out.reference_distance = avg_dr / static_cast<double>(keep);
  out.best_range = usable.front()->range;
  out.best_interval = usable.front()->interval;
  return out;
}

AdaptiveResult locate_adaptive(const signal::PhaseProfile& profile,
                               const AdaptiveConfig& config) {
  if (config.ranges.empty() || config.intervals.empty()) {
    throw std::invalid_argument("locate_adaptive: empty candidate lists");
  }
  std::vector<AdaptiveCandidate> candidates;
  candidates.reserve(config.ranges.size() * config.intervals.size());

  for (double range : config.ranges) {
    const auto windowed =
        restrict_to_x_range(profile, config.range_center_x, range);
    for (double interval : config.intervals) {
      AdaptiveCandidate cand;
      cand.range = range;
      cand.interval = interval;
      const LocalizerConfig lc =
          adaptive_cell_config(config, interval, windowed);
      try {
        cand.result = LinearLocalizer(lc).locate(windowed);
        cand.usable = adaptive_candidate_usable(cand.result, config);
      } catch (const std::exception&) {
        cand.usable = false;
      }
      candidates.push_back(std::move(cand));
    }
  }

  return finalize_adaptive_sweep(std::move(candidates), config);
}

}  // namespace lion::core
