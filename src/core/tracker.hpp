// Streaming conveyor tracker.
//
// The paper's industrial scenario runs continuously: parcels ride a belt of
// known direction and speed past a calibrated antenna, and the edge node
// must emit a position fix per parcel window in real time. This module
// wraps the tag locator in a push-based sliding window: feed raw reader
// samples as they arrive; every completed window yields a fix of the tag's
// start position (and its implied current position) plus the solver's
// uncertainty estimate.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "core/localizer.hpp"
#include "core/tag_locator.hpp"
#include "signal/stitch.hpp"
#include "sim/reader.hpp"

namespace lion::core {

/// Tracker configuration.
struct TrackerConfig {
  /// Calibrated phase center of the reader antenna.
  Vec3 antenna_phase_center{};
  /// Unit direction of belt travel.
  Vec3 belt_direction{1.0, 0.0, 0.0};
  /// Belt speed [m/s] (from the belt encoder).
  double belt_speed = 0.1;
  /// Samples per window; a window must span enough belt travel for the
  /// localizer's pairing interval.
  std::size_t window = 600;
  /// Samples the window advances between fixes (hop < window overlaps).
  std::size_t hop = 300;
  /// Localizer settings (target_dim, method, side hint, ...).
  LocalizerConfig localizer{};
  /// Preprocessing for each window.
  signal::PreprocessConfig preprocess{};
};

/// One emitted fix.
struct TrackFix {
  double t = 0.0;        ///< timestamp of the window's last sample [s]
  Vec3 start{};          ///< estimated tag position at the window's t0
  Vec3 position{};       ///< implied tag position at t
  double sigma = 0.0;    ///< solver position_sigma [m]
  double mean_residual = 0.0;
  bool valid = false;    ///< false when the window failed to solve
};

/// Push-based sliding-window tracker.
class ConveyorTracker {
 public:
  /// Throws std::invalid_argument for a zero belt direction, non-positive
  /// speed, window < 8 samples, or hop == 0.
  explicit ConveyorTracker(TrackerConfig config);

  /// Feed one reader sample (chronological order). Returns a fix each time
  /// a window completes; the fix has valid == false when that window's
  /// system was unsolvable (kept in the history for gap accounting).
  std::optional<TrackFix> push(const sim::PhaseSample& sample);

  /// All fixes emitted so far.
  const std::vector<TrackFix>& fixes() const { return fixes_; }

  /// Samples currently buffered (not yet enough for the next fix).
  std::size_t pending() const { return buffer_.size(); }

  const TrackerConfig& config() const { return config_; }

 private:
  TrackFix solve_window() const;

  TrackerConfig config_;
  std::deque<sim::PhaseSample> buffer_;
  std::vector<TrackFix> fixes_;
};

}  // namespace lion::core
