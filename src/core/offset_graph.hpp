// Bipartite offset decomposition (Sec. IV-C2).
//
// A single calibration only yields the *combined* offset theta_T + theta_R
// of one tag-antenna pair — the two cannot be split from one measurement.
// But calibrating a grid of pairs (several antennas, several tags) gives
// wrapped observations
//
//     Theta[a][t] = (rho_a + tau_t) mod 2*pi
//
// which determine every antenna offset rho_a and tag offset tau_t up to a
// single shared gauge constant (add c to every rho, subtract c from every
// tau). We fix the gauge as tau_0 = 0 and solve the circular least-squares
// problem by alternating circular means — robust to noise, wrap-around and
// missing pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace lion::core {

/// Marker for a pair that was never calibrated.
inline constexpr double kMissingOffset = -1.0e9;

/// Result of the decomposition.
struct OffsetDecomposition {
  /// Per-antenna offsets rho_a in [0, 2*pi), gauge tau_0 = 0.
  std::vector<double> antenna_offsets;
  /// Per-tag offsets tau_t in [0, 2*pi); tau_0 == 0 by construction.
  std::vector<double> tag_offsets;
  /// RMS circular residual of Theta[a][t] - (rho_a + tau_t) [rad].
  double rms_residual = 0.0;
  /// Alternating iterations performed.
  std::size_t iterations = 0;
};

/// Decompose a grid of measured pair offsets.
///
/// `measured` is antennas x tags; entries equal to kMissingOffset are
/// skipped (the pair was not calibrated). Throws std::invalid_argument when
/// the matrix is empty, any antenna or tag has no measured pair at all, or
/// the measurement graph is disconnected (offsets of disconnected groups
/// have independent gauges and cannot be reconciled).
OffsetDecomposition decompose_offsets(const linalg::Matrix& measured,
                                      std::size_t max_iterations = 50,
                                      double tolerance = 1e-10);

/// Predicted pair offset for a decomposition: (rho_a + tau_t) mod 2*pi.
double predicted_pair_offset(const OffsetDecomposition& d, std::size_t antenna,
                             std::size_t tag);

}  // namespace lion::core
