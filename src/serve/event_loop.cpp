#include "serve/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace lion::serve {

namespace {

#ifdef __linux__

class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool add(int fd, bool want_read) override {
    epoll_event ev{};
    ev.events = want_read ? (EPOLLIN | EPOLLRDHUP) : EPOLLRDHUP;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  bool set_read_interest(int fd, bool want_read) override {
    epoll_event ev{};
    ev.events = want_read ? (EPOLLIN | EPOLLRDHUP) : EPOLLRDHUP;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }

  bool remove(int fd) override {
    // Deleting an fd that was never added returns ENOENT; callers treat
    // remove() as idempotent cleanup, so that is success here.
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0) return true;
    return errno == ENOENT || errno == EBADF;
  }

  int wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    epoll_event evs[256];
    const int n = ::epoll_wait(epfd_, evs, 256, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.hangup =
          (evs[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
      out.push_back(e);
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  int epfd_ = -1;
};

#endif  // __linux__

class PollPoller final : public Poller {
 public:
  bool add(int fd, bool want_read) override {
    if (index_.count(fd) != 0) return false;
    index_[fd] = fds_.size();
    pollfd p{};
    p.fd = fd;
    p.events = want_read ? POLLIN : 0;
    fds_.push_back(p);
    return true;
  }

  bool set_read_interest(int fd, bool want_read) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return false;
    fds_[it->second].events = want_read ? POLLIN : 0;
    return true;
  }

  bool remove(int fd) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return true;  // idempotent, like epoll DEL
    const std::size_t pos = it->second;
    const std::size_t last = fds_.size() - 1;
    if (pos != last) {
      fds_[pos] = fds_[last];
      index_[fds_[pos].fd] = pos;
    }
    fds_.pop_back();
    index_.erase(it);
    return true;
  }

  int wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    if (fds_.empty()) {
      // Nothing registered: emulate the block so callers need no special
      // case (bounded, so a stop wakeup via a registered pipe — which
      // cannot exist here — is not required for liveness).
      ::poll(nullptr, 0, timeout_ms < 0 ? 50 : timeout_ms);
      return 0;
    }
    const int n = ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()),
                         timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    if (n == 0) return 0;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
    return static_cast<int>(out.size());
  }

  const char* name() const override { return "poll"; }

 private:
  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;  ///< fd -> fds_ slot
};

}  // namespace

std::unique_ptr<Poller> Poller::create(bool force_poll, std::string& error) {
#ifdef __linux__
  if (!force_poll) {
    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd >= 0) return std::make_unique<EpollPoller>(epfd);
    error = std::string("epoll_create1: ") + std::strerror(errno);
    // Fall through: the poll() backend serves the same contract.
  }
#else
  (void)force_poll;
#endif
  error.clear();
  return std::make_unique<PollPoller>();
}

}  // namespace lion::serve
