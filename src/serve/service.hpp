// Streaming calibration service: the long-running ingestion path.
//
// A StreamService turns the wire protocol (serve/wire.hpp) into solved
// calibration reports and track fixes, scheduling every solve on the
// engine ThreadPool while the ingest thread stays responsive:
//
//   bytes -> ChunkDecoder -> parse_line -> StreamSession demux
//         -> (flush / completed window) -> SolveRequest on the pool
//         -> ordered emitter -> sink (socket, stdout, test vector)
//
// Determinism contract
// --------------------
// For a single ingest thread, the emitted byte stream is a pure function
// of the input byte stream and the ServiceConfig — independent of chunk
// boundaries, pool thread count, and scheduling interleavings:
//   1. chunk boundaries vanish in ChunkDecoder (line reassembly);
//   2. every response reserves a global sequence number on the ingest
//      thread, in ingest order;
//   3. workers emit through a reorder buffer that releases responses in
//      strict sequence order;
//   4. solves run the same code as the one-shot paths (calibrate ==
//      calibrate_antenna_robust with the session's config; track ==
//      ConveyorTracker window solve), so the payloads are byte-identical
//      to the batch pipeline.
// Wall-clock timeouts (request_timeout_s > 0) are the one opt-in
// exception: a timed-out request degrades to a kSolverFailure report.
//
// `!tick <id>` (pose ticks) stays inside the contract: the incremental
// solver is a pure function of the session's accepted-sample stream (see
// core/incremental.hpp), its answer is sequenced on the ingest thread,
// and the residual-gate fallback runs the same window solve as a track
// fix — so the tick stream is as chunk/thread-independent as the rest.
//
// Durability (opt-in: ServiceConfig::journal)
// -------------------------------------------
// With a JournalStore attached, every applied session mutation (declare,
// CSV row, JSON sample, flush boundary) is appended to the session's
// journal after it takes effect, stamped with the service's virtual-clock
// and next-seq snapshots. A `!session` declare whose id has a journal on
// disk *restores* instead of creating: the service waits for in-flight
// solves to drain, replays the journal through the normal demux/parser
// code with emission and solving suppressed, fast-forwards the clock and
// sequence counters to the journal's snapshots, and answers with an
// out-of-band lion.restore.v1 ack carrying the record count — the
// client's resume cursor. Replayed-then-continued streams therefore emit
// the same sequenced bytes an uninterrupted stream would have: every
// seq-consuming response on the clean-stream path is covered by a
// journaled record's snapshot. Unjournaled seq consumers (mid-stream
// `!stats`, malformed-line errors) in the window between the last record
// and a crash are the documented exception — after recovery those seqs
// are reused. The re-declare must match the journaled declare
// (normalized form) or it is rejected with code="journal_conflict".
//
// Out-of-band responses
// ---------------------
// lion.restore.v1 and lion.health.v1 lines carry no sequence number and
// bypass the reorder buffer (they are still serialized with it over the
// sink). They are ops-plane diagnostics, excluded from the byte-
// determinism contract; everything sequenced stays a pure function of
// the input stream.
//
// Overload behaviour
// ------------------
// Each session may have at most `max_inflight_per_session` solves queued
// or running. At the cap the service either blocks the ingest thread
// (default: lossless backpressure, the transport's TCP window pushes back
// on the producer) or, with reject_when_busy, answers lion.error.v1
// code="busy" and drops the request. A `!close` whose terminal flush is
// busy-rejected keeps the session (and its buffer) alive so the client
// can retry the close. Sessions idle for more than
// `idle_ttl_ticks` virtual-clock ticks (one tick per ingested line, plus
// explicit `!tick n`) are evicted deterministically — ordered by
// (last-active tick, id) — with a lion.event.v1 notice. The virtual clock
// keeps eviction reproducible and test-controllable; no wall clock is
// consulted.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <string_view>

#include "engine/thread_pool.hpp"
#include "obs/events.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace lion::serve {

struct ServiceConfig {
  /// Solver pool threads; 0 = hardware_concurrency (at least 1).
  std::size_t threads = 0;
  /// Per-session cap on scheduled-but-unfinished solves.
  std::size_t max_inflight_per_session = 4;
  /// Hard cap on live sessions; declares beyond it are rejected.
  std::size_t max_sessions = 1024;
  /// Per-session cap on buffered samples (calibrate mode); rows beyond it
  /// are rejected with code="buffer_full". Track mode is bounded by the
  /// window size already.
  std::size_t max_session_samples = 1 << 20;
  /// Evict sessions idle for more than this many virtual-clock ticks;
  /// 0 disables eviction.
  std::uint64_t idle_ttl_ticks = 0;
  /// Solve requests older than this (enqueue to start, seconds) degrade to
  /// a kSolverFailure report instead of running; 0 disables deadlines.
  double request_timeout_s = 0.0;
  /// Wire line length cap (oversized lines are dropped with an error).
  std::size_t max_line_bytes = kDefaultMaxLineBytes;
  /// true: answer code="busy" at the in-flight cap instead of blocking.
  bool reject_when_busy = false;
  /// When set, data arriving before any `!session` declare auto-creates a
  /// calibrate session named "default" with this physical center — lets
  /// `lion serve` ingest a bare CSV pipe with zero protocol ceremony.
  std::optional<Vec3> implicit_center;
  /// Monotonic seconds, injectable so timeout tests can run on a virtual
  /// clock; nullptr = std::chrono::steady_clock.
  std::function<double()> clock;
  /// When set, sessions are durable: mutations are journaled here and a
  /// declare whose id has a journal on disk restores it. The store is
  /// shared across services (the socket server owns one per daemon) and
  /// must outlive this service. nullptr = no durability.
  JournalStore* journal = nullptr;
  /// Ops-plane event sink (slow requests, gate fallbacks, journal
  /// degradation, evictions, drain). Shared across services, rate-limited
  /// internally, and observation-only — may be nullptr. Must outlive this
  /// service.
  obs::EventLog* events = nullptr;
  /// Requests whose queue-wait + solve exceeds this emit a "slow_request"
  /// event; 0 disables the check.
  double slow_request_s = 0.0;
  /// Shard identity when this service is one ingest shard of a sharded
  /// socket server. With shard_count > 1, `!stats` and `!healthz`
  /// responses carry `"shard"`/`"shards"` fields (so clients can count
  /// per-shard barriers); with the default single-shard configuration the
  /// response bytes are exactly the pre-shard wire format.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Shard ingest-queue gauges, injected by the socket server so `!healthz`
  /// and the telemetry snapshot can report queue depth/high-water/stall
  /// counts without the service knowing about the queue. May be null.
  std::function<std::uint64_t()> queue_depth;
  std::function<std::uint64_t()> queue_hwm;
  std::function<std::uint64_t()> queue_stalls;
};

/// Ingest/serve counters (snapshot; also exported as obs counters).
struct ServeStats {
  std::uint64_t lines = 0;           ///< wire lines processed
  std::uint64_t samples = 0;         ///< read records accepted
  std::uint64_t reports = 0;         ///< lion.report.v1 responses
  std::uint64_t fixes = 0;           ///< lion.fix.v1 responses
  std::uint64_t errors = 0;          ///< lion.error.v1 responses
  std::uint64_t parse_errors = 0;    ///< subset of errors: bad input lines
  std::uint64_t evictions = 0;       ///< idle sessions evicted
  std::uint64_t backpressure_waits = 0;  ///< ingest blocked at the cap
  std::uint64_t rejected_busy = 0;   ///< requests refused (reject mode)
  std::uint64_t timeouts = 0;        ///< requests past their deadline
  std::uint64_t oversized = 0;       ///< wire lines dropped for length
  std::uint64_t restores = 0;        ///< sessions adopted from journals
  std::uint64_t journal_errors = 0;  ///< sessions degraded by I/O failure
  std::uint64_t pose_ticks = 0;      ///< lion.tick.v1 responses (both paths)
  std::uint64_t tick_fallbacks = 0;  ///< pose ticks routed to the full solve
  /// Calibrate-flush decision counters (PR 10). cal_flushes =
  /// cal_memo + cal_incremental + cal_fallbacks; the per-reason cal_fb_*
  /// split explains *why* the warm tier declined (see
  /// core::CalFallbackReason for the gate each one names).
  std::uint64_t cal_flushes = 0;
  std::uint64_t cal_memo = 0;
  std::uint64_t cal_incremental = 0;
  std::uint64_t cal_fallbacks = 0;
  std::uint64_t cal_fb_cold = 0;
  std::uint64_t cal_fb_status = 0;
  std::uint64_t cal_fb_carve = 0;
  std::uint64_t cal_fb_delta = 0;
  std::uint64_t cal_fb_rows = 0;
  std::uint64_t cal_fb_drift = 0;
  std::uint64_t cal_fb_cancellation = 0;
  std::uint64_t cal_fb_sweep = 0;
  std::uint64_t ticks = 0;           ///< virtual clock now
  std::size_t sessions = 0;          ///< live sessions
};

/// Per-session RED snapshot for the telemetry plane (/metrics, lion_top).
struct SessionTelemetry {
  std::string id;
  bool track = false;
  std::size_t in_flight = 0;
  std::uint64_t samples = 0;
  std::uint64_t flushes = 0;
  std::uint64_t requests = 0;        ///< solves scheduled (rate)
  std::uint64_t errors = 0;          ///< error responses attributed here
  std::uint64_t pose_ticks = 0;
  obs::HistogramData solve_seconds;  ///< duration distribution
};

/// Everything the scrape endpoint needs from one service, in one lock
/// acquisition: aggregate stats plus the per-session RED series.
struct ServiceTelemetry {
  ServeStats stats;
  double uptime_s = 0.0;
  std::uint64_t reorder_hwm = 0;     ///< reorder-buffer depth high water
  std::uint64_t journal_lag = 0;     ///< appended-not-fsynced records
  std::uint64_t journal_degraded = 0;
  /// Shard identity and ingest-queue gauges (sharded socket server; zero
  /// and 1 for plain stdio/per-test services).
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_hwm = 0;
  std::uint64_t queue_stalls = 0;
  std::vector<SessionTelemetry> sessions;  ///< id-sorted (map order)
};

/// Per-shard ingest-queue gauges, readable without touching any service
/// lock. A shard thread wedged in a blocking send to a slow consumer
/// holds its service's mutex — which is exactly when the queue gauges
/// matter, so the scrape/telemetry path reads these atomic mirrors
/// instead of the full ServiceTelemetry snapshot.
struct ShardGauges {
  std::size_t shard = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_hwm = 0;
  std::uint64_t queue_stalls = 0;
};

class StreamService {
 public:
  /// Receives each response line (no trailing newline), in sequence
  /// order, serialized — never concurrently. Must not call back into the
  /// service.
  using Sink = std::function<void(std::string_view line)>;
  /// Origin-routing sink: `origin` is the ingest_line() origin token of
  /// the wire line that triggered the response (eviction notices use the
  /// evicted session's declaring origin). The sharded socket server maps
  /// origins back to connections; the plain Sink form discards them.
  using RoutedSink =
      std::function<void(std::string_view line, std::uint64_t origin)>;

  StreamService(ServiceConfig config, Sink sink);
  /// Same, scheduling on a caller-owned pool (shared across services —
  /// the socket server gives every ingest shard its own session namespace
  /// on one pool). The pool must outlive this service.
  StreamService(ServiceConfig config, Sink sink, engine::ThreadPool* pool);
  /// Origin-routing form: one service multiplexing many connections (an
  /// ingest shard). Response routing and per-connection "current session"
  /// state key off the origin tokens passed to ingest_line().
  StreamService(ServiceConfig config, RoutedSink sink,
                engine::ThreadPool* pool);
  ~StreamService();  ///< drains in-flight solves

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Feed raw transport bytes (chunked arbitrarily). Not thread-safe
  /// against itself — one transport thread per service.
  void ingest_bytes(std::string_view bytes);

  /// Feed one complete line (newline already stripped). Thread-safe: the
  /// concurrency suite drives N producer threads through this.
  void ingest_line(std::string_view line);

  /// Same, tagged with the connection origin the line came from. Sessions
  /// declared by this line are owned by `origin`; responses it triggers
  /// route back to it (RoutedSink). Origin 0 is the anonymous/stdio
  /// origin the untagged overload uses.
  void ingest_line(std::string_view line, std::uint64_t origin);

  /// Connection teardown without `!close`: wait for full quiescence, then
  /// drop every session owned by `origin` — journals are synced and
  /// detached (files kept, so a later declare restores), buffers are
  /// discarded, nothing is emitted. Mirrors what destroying the old
  /// per-connection service did, scoped to one origin. After this returns
  /// no response can route to `origin` again (quiescence ⇒ the reorder
  /// buffer has released every sequenced line).
  void release_origin(std::uint64_t origin);

  /// Emit the oversized-line error responses the transport's own line
  /// splitter detected (the sharded front-end splits lines before the
  /// service sees bytes). Routed to `origin`.
  void report_oversized(std::size_t count, std::uint64_t origin);

  /// End of stream: flush the chunk decoder's trailing partial line and
  /// block until every scheduled solve has emitted its response.
  void finish();

  /// Block until all scheduled solves have emitted (without ending the
  /// stream).
  void drain();

  ServeStats stats() const;

  /// Snapshot for the scrape endpoint: aggregate stats + per-session RED
  /// series, one mu_ acquisition. Safe to call concurrently with ingest.
  ServiceTelemetry telemetry() const;

 private:
  struct SolveRequest {
    std::uint64_t seq = 0;
    std::string session;
    SessionMode mode = SessionMode::kCalibrate;
    SessionConfig config;
    std::vector<sim::PhaseSample> samples;
    /// Track solves: the window index. Pose-tick fallbacks: the tick index
    /// (the response is a lion.tick.v1 line, not a lion.fix.v1 line).
    std::uint64_t window_index = 0;
    bool pose_tick = false;
    /// Calibrate flush that fell through the incremental tier: the
    /// completed full solve installs the session's new anchor (and
    /// journals kCalAnchor) in run_request's accounting block.
    bool cal_flush = false;
    double enqueue_time = 0.0;
    std::uint64_t trace_id = 0;    ///< the ingest line that scheduled this
    std::uint64_t enqueue_ns = 0;  ///< trace clock at schedule() time
    std::uint64_t origin = 0;      ///< connection the response routes to
  };

  // The handle_* / accept_sample / schedule family runs on the ingest
  // thread with `lock` holding mu_; paths that can block (backpressure)
  // release and reacquire it, so session references never survive a call.
  void handle_line(const ParsedLine& line, std::uint64_t origin);
  void handle_session_declare(std::unique_lock<std::mutex>& lock,
                              const ParsedLine& line);
  void handle_data(std::unique_lock<std::mutex>& lock, const ParsedLine& line);
  /// Returns true iff a solve was scheduled (false: unknown session,
  /// busy-rejected, or the session vanished while blocked).
  bool handle_flush(std::unique_lock<std::mutex>& lock, const std::string& id);
  /// Lazily construct a calibrate session's incremental flush solver
  /// (never throws; a failed construction leaves `cal` null and every
  /// flush on the batch path). Callers hold mu_.
  void ensure_cal_solver(StreamSession& session);
  /// Count one calibrate-flush decision into stats_ (and the obs plane).
  void count_cal_decision(const core::CalFlushDecision& decision);
  /// `!tick <id>`: answer from the session's incremental solver when its
  /// residual gate passes, else schedule a full-pipeline window solve on
  /// the pool (same bytes either way: one lion.tick.v1 line per tick).
  void handle_pose_tick(std::unique_lock<std::mutex>& lock,
                        const std::string& id);
  void handle_close(std::unique_lock<std::mutex>& lock, const std::string& id);
  void emit_stats_response();
  void emit_trace_response(const std::string& id);
  void accept_sample(std::unique_lock<std::mutex>& lock, const std::string& id,
                     const sim::PhaseSample& sample);
  void report_oversized(std::size_t count);  ///< origin-0 decoder path
  /// Reserve-or-reject at the in-flight cap; returns false when the
  /// request was rejected (busy) or the session vanished while blocked.
  bool wait_for_slot(std::unique_lock<std::mutex>& lock,
                     const std::string& id);
  void schedule(std::unique_lock<std::mutex>& lock, SolveRequest request);
  void run_request(SolveRequest& request);
  void evict_idle(std::unique_lock<std::mutex>& lock);
  std::uint64_t reserve_seq();  ///< callers hold mu_
  void emit(std::uint64_t seq, std::string line, std::uint64_t origin);
  void emit_error(const std::string& session, const std::string& code,
                  const std::string& detail, bool parse_error);
  /// The "current session" of one origin ("" when none); callers hold mu_.
  const std::string& current_of(std::uint64_t origin) const;
  /// Drop every origin's current-session pointer equal to `id` (the
  /// session was closed or evicted); callers hold mu_.
  void clear_current(const std::string& id);
  /// Sequence-free ops-plane line: serialized over the sink but outside
  /// the reorder buffer (restore acks, healthz snapshots).
  void emit_oob(const std::string& line);
  void emit_health_response();
  double now() const;
  double uptime_s() const;

  // --- telemetry (observation only) --------------------------------------
  /// Record one request span three ways: the stage's registry histogram
  /// (metrics enabled), the calling thread's Chrome-trace ring (tracing
  /// enabled), and the session's bounded `!trace` ring (always — the dump
  /// must work on an otherwise-uninstrumented daemon). Callers hold mu_.
  void record_span(StreamSession& session, std::uint64_t trace_id,
                   obs::Stage stage, std::uint64_t start_ns,
                   std::uint64_t end_ns);
  /// Trace id of the wire line currently being handled. Exact for a
  /// single ingest thread (the determinism-contract mode); with multiple
  /// producers a line handled while another blocks on backpressure may
  /// be attributed to the newer line — acceptable for diagnostics.
  std::uint64_t current_trace_id() const {
    return next_trace_id_ == 0 ? 0 : next_trace_id_ - 1;
  }
  /// Forward to cfg_.events when attached; no-op (and never throws)
  /// otherwise.
  void event(obs::Severity severity, const char* type,
             const std::string& session, std::string detail,
             std::uint64_t value = 0);

  // --- durability (cfg_.journal != nullptr) ------------------------------
  /// Attach a journal to a declare: restore-and-replay when the id has a
  /// journal on disk, open a fresh one otherwise. Returns false when the
  /// declare must be rejected (conflict / attached elsewhere); `error` and
  /// `code` carry the response. On restore, fills `restored`.
  bool attach_journal(std::unique_lock<std::mutex>& lock,
                      StreamSession& session, const ParsedLine& line,
                      std::string& code, std::string& error,
                      std::optional<RecoveredSession>& restored);
  /// Replay recovered records into `session` with solving and emission
  /// suppressed (buffers, parser layout, and window carving only).
  void replay_records(StreamSession& session, const RecoveredSession& rec);
  /// Buffer/window bookkeeping shared by live accepts and replay. In
  /// track mode carves completed windows; `carve_only` suppresses the
  /// solve (replay path). Returns false when the sample was dropped.
  void replay_accept(StreamSession& session, const sim::PhaseSample& sample);
  /// Mirror a window mutation into the session's incremental solver,
  /// never letting an exception reach the ingest thread (a throwing
  /// solver is dropped; the session degrades to fallback-only ticks).
  void push_incremental(StreamSession& session,
                        const sim::PhaseSample& sample);
  void retire_incremental(StreamSession& session, std::size_t count);
  /// Append one record to the session's journal, degrading the session
  /// (once, with an error response) on I/O failure. Callers hold mu_.
  void journal_append(StreamSession& session, JournalRecordType type,
                      std::string_view line);
  /// Seal (sync) and detach every live session's journal — service
  /// teardown without close. Called by the destructor.
  void detach_journals();

  ServiceConfig cfg_;
  RoutedSink sink_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< backpressure slots + drain
  std::map<std::string, StreamSession> sessions_;
  /// Per-origin "current session" (bare data lines route here). The old
  /// single current_session_ is currents_[0] — the stdio/test origin.
  std::map<std::uint64_t, std::string> currents_;
  /// Origin of the wire line being handled; guarded by mu_ (set right
  /// after handle_line locks it).
  std::uint64_t current_origin_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t clock_ticks_ = 0;
  std::size_t outstanding_ = 0;  ///< scheduled solves not yet emitted
  std::uint64_t next_trace_id_ = 0;  ///< one per ingested wire line
  // Uptime anchors on the real monotonic clock, never cfg_.clock: uptime
  // is an out-of-band wall quantity, and an injected (virtual/throwing)
  // clock must see exactly the same call sequence as before uptime existed.
  std::chrono::steady_clock::time_point start_tp_ =
      std::chrono::steady_clock::now();
  ServeStats stats_;

  std::mutex decoder_mu_;
  ChunkDecoder decoder_;

  mutable std::mutex emit_mu_;  ///< also taken by const telemetry reads
  std::uint64_t emit_next_ = 0;
  /// Buffered out-of-order responses, stamped with their arrival on the
  /// trace clock so the release can account the reorder-hold span.
  struct PendingEmit {
    std::string line;
    std::uint64_t arrival_ns = 0;
    std::uint64_t origin = 0;
  };
  std::map<std::uint64_t, PendingEmit> emit_buffer_;
  std::uint64_t reorder_hwm_ = 0;  ///< guarded by emit_mu_

  engine::ThreadPool* pool_ = nullptr;     ///< scheduling target
  std::unique_ptr<engine::ThreadPool> owned_pool_;  ///< when not shared
};

}  // namespace lion::serve
