// Scrape endpoint for the serving stack: a minimal HTTP/1.0 server that
// renders the process's telemetry as Prometheus text exposition.
//
//   GET /metrics   text/plain 0.0.4: the obs::MetricsRegistry snapshot,
//                  process RSS/fd gauges, event-log counters, aggregate
//                  serve gauges, and per-session RED series (labelled
//                  {session="<id>"}).
//   GET /healthz   application/json liveness probe: status, uptime,
//                  connection/session counts.
//
// Design constraints, in order:
//   - never touch the deterministic ingest path: the endpoint runs on its
//     own accept thread, and every value it reads comes from a lock-free
//     registry snapshot or a bounded collect() callback that takes the
//     same per-service mutex `!stats` already takes;
//   - survive rude clients: requests are read with a poll() deadline and
//     a size cap, one at a time (a scraper is one Prometheus instance,
//     not a fleet), and any malformed request gets a 400 and a close;
//   - degrade, never crash: a failed bind reports through start()'s error
//     string and leaves the daemon serving without telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "serve/service.hpp"

namespace lion::serve {

struct TelemetryConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (port() reports the bound one)
  /// Snapshots of every live service (one per ingest shard). Called per
  /// scrape, off the ingest threads; may be empty/null.
  std::function<std::vector<ServiceTelemetry>()> collect;
  /// Lock-free per-shard queue gauges (SocketServer::shard_gauges). Kept
  /// separate from collect: these stay scrapeable even while a shard
  /// thread is wedged sending to a slow consumer. May be null.
  std::function<std::vector<ShardGauges>()> shard_gauges;
  /// Live transport connections (SocketServer::live_connections). The
  /// collect() entry count stopped meaning "connections" when services
  /// became per-shard. Null = fall back to the collect() entry count.
  std::function<std::uint64_t()> connections;
  /// Event log to export emission counters from; may be nullptr.
  obs::EventLog* events = nullptr;
};

/// Render the scrape body (exposed for tests: the exact bytes /metrics
/// serves, minus HTTP framing). `connections` < 0 falls back to
/// services.size() — the pre-shard "one service per connection" layout.
std::string render_metrics_body(
    const std::vector<ServiceTelemetry>& services, const obs::EventLog* events,
    const std::vector<ShardGauges>& shards = {},
    std::int64_t connections = -1);

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryConfig config);
  ~TelemetryServer();  ///< stop()s if still running

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind + listen + spawn the serving thread. False (reason in `error`)
  /// on socket failure; the server is then inert.
  bool start(std::string& error);

  /// Bound TCP port after an ephemeral bind; -1 when not started.
  int port() const { return port_; }

  /// Scrapes answered so far (including /healthz).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Close the listener and join the serving thread. Safe to call twice.
  void stop();

 private:
  void serve_loop();
  void handle_client(int fd);

  TelemetryConfig cfg_;
  int listen_fd_ = -1;
  int port_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: stop() wakes the poll
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
  double start_s_ = 0.0;  ///< steady-clock seconds at start()
};

}  // namespace lion::serve
