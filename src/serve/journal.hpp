// Durable session journals: the crash-recovery layer of the serve path.
//
// A journal is an append-only per-session file of CRC-framed records, one
// file per live session under a journal directory:
//
//   <dir>/<session-id>.lionj
//
// Every record that reaches the file describes one *applied* state
// mutation of that session — the declare that created it, each CSV row
// fed to its stream parser (headers and error rows included, so the
// parser's layout and line-number state replays exactly), each JSON
// sample accepted, and each flush boundary. Records carry a snapshot of
// the service's global counters (virtual-clock tick, next response
// sequence number) taken after the mutation, so recovery can restore the
// sequencing domain as of the last durable record without a cross-session
// merge.
//
// Durability model
// ----------------
//   - journal-after-apply: a record is appended after its mutation (and
//     any response-sequence reservation) happened. A crash between apply
//     and append loses at most the un-journaled suffix; the client
//     resumes from the restore ack's record count and re-sends it.
//   - write() per record, fsync() batched every `fsync_every` appends and
//     forced at flush boundaries and on seal. Process death (SIGKILL)
//     never loses write()n bytes — fsync batching is an OS-crash window
//     only.
//   - torn tails are expected: recovery stops at the first record whose
//     frame, CRC, or LSN fails, never throws, and reports the tail as
//     torn. Only the newest record can be torn (single appender).
//   - a cleanly closed (or evicted) session's file is removed; journals
//     on disk are exactly the sessions that were live at the crash.
//
// The store is shared across connections (the SocketServer owns one), so
// a session journaled by a dead connection can be adopted by the next
// connection that re-declares it. `claim` hands a session's recovered
// state to exactly one service at a time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "serve/wire.hpp"

namespace lion::serve {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`. Public because
/// the codec fuzz suite builds deliberately corrupt frames with it.
std::uint32_t journal_crc32(std::string_view data);

/// 8-byte file magic every journal starts with.
inline constexpr char kJournalMagic[8] = {'L', 'I', 'O', 'N',
                                          'J', 'R', 'N', '1'};

/// Hard cap on one record's payload; a frame claiming more is corruption.
inline constexpr std::size_t kJournalMaxPayload = 1 << 20;

/// What one record describes.
enum class JournalRecordType : std::uint8_t {
  kDeclare = 1,     ///< line = normalized `!session` declare
  kCsvRow = 2,      ///< line = raw CSV payload routed to this session
  kJsonSample = 3,  ///< line = canonical JSON read record
  kFlush = 4,       ///< flush boundary (line empty)
  kPoseTick = 5,    ///< pose tick emitted for this session (line empty)
  kCalFlush = 6,    ///< calibrate flush decided (line empty)
  kCalAnchor = 7,   ///< incremental-cal anchor installed; line = decimal
                    ///< sample count the anchoring batch solve consumed
};

/// One decoded record.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kCsvRow;
  std::uint64_t lsn = 0;   ///< record index within this file, from 0
  std::uint64_t tick = 0;  ///< service virtual clock after the mutation
  std::uint64_t seq = 0;   ///< service next response seq after the mutation
  std::string line;
};

/// Frame one record: `u32 crc | u32 len | payload`, payload =
/// `u8 type | u64 lsn | u64 tick | u64 seq | line bytes`, little-endian.
std::string encode_journal_record(const JournalRecord& record);

/// Result of decoding a journal byte stream (after the file magic).
struct JournalDecode {
  std::vector<JournalRecord> records;  ///< valid prefix, LSNs 0..n-1
  bool torn = false;       ///< trailing bytes failed framing/CRC/LSN
  std::size_t consumed = 0;  ///< bytes of `data` covered by `records`
};

/// Decode as many valid records as the bytes hold. Never throws; stops at
/// the first bad frame (short header, oversized length, CRC mismatch, or
/// non-contiguous LSN) and flags the remainder as a torn tail.
JournalDecode decode_journal_records(std::string_view data,
                                     std::uint64_t first_lsn = 0);

/// Normalized `!session` declare line rebuilt from a parsed declare, with
/// fixed option order and %.17g numbers — the form journaled and compared
/// on re-declare, so textual equality means config equality.
std::string normalize_declare_line(const ParsedLine& line);

/// Canonical JSON read-record line for journaling an accepted sample.
/// Round-trips exactly through parse_line (%.17g doubles; non-finite
/// values print as nan/inf tokens, which the wire number parser accepts).
std::string canonical_sample_line(const sim::PhaseSample& sample);

class JournalStore;

/// Appender for one session's journal file. Created by the store; never
/// throws — I/O failure latches `ok() == false` and the caller degrades.
class JournalWriter {
 public:
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool ok() const { return fd_ >= 0 && !failed_; }

  /// Append one record; assigns the next LSN and stamps the snapshots.
  /// fsyncs every `fsync_every` appends. Returns false on I/O failure.
  bool append(JournalRecordType type, std::string_view line,
              std::uint64_t tick, std::uint64_t seq);

  /// Force pending bytes to disk now (flush boundaries, seal, drain).
  bool sync();

  std::uint64_t records() const { return next_lsn_; }
  std::uint64_t unsynced() const { return unsynced_; }

 private:
  friend class JournalStore;
  JournalWriter(JournalStore* store, std::string path,
                std::uint64_t next_lsn, std::size_t fsync_every,
                bool truncate);

  JournalStore* store_;
  std::string path_;
  int fd_ = -1;
  bool failed_ = false;
  std::uint64_t next_lsn_ = 0;
  std::size_t fsync_every_;
  std::uint64_t unsynced_ = 0;
  std::string scratch_;  ///< reused frame buffer (append is hot)
};

struct JournalStoreConfig {
  std::string dir;
  /// fsync once per this many appended records (1 = every record). Only
  /// bounds the OS-crash loss window — process death never loses write()n
  /// records — so the default batches aggressively; flush boundaries and
  /// seal force a sync regardless.
  std::size_t fsync_every = 1024;
};

/// A session's journal as read back at claim time.
struct RecoveredSession {
  std::string id;
  std::string declare_line;         ///< normalized declare (record 0)
  std::vector<JournalRecord> records;  ///< the rest, in LSN order
  std::uint64_t record_count = 0;   ///< including the declare record
  /// Records that correspond 1:1 to client wire lines — record_count
  /// minus internal bookkeeping records (kCalAnchor). This is the resume
  /// cursor the restore ack reports: a client that fed k lines resumes
  /// at input index == client_records no matter how many anchors the
  /// service journaled behind its back.
  std::uint64_t client_records = 0;
  std::uint64_t last_tick = 0;      ///< snapshots of the newest record
  std::uint64_t last_seq = 0;
  bool torn = false;                ///< a torn tail was skipped
};

/// Shared, thread-safe directory of per-session journals.
class JournalStore {
 public:
  /// Creates the directory if missing and scans existing journals (counts
  /// only — files are re-read at claim time, which is when they are
  /// authoritative). On failure `ok()` is false and the store is inert.
  explicit JournalStore(JournalStoreConfig config);

  JournalStore(const JournalStore&) = delete;
  JournalStore& operator=(const JournalStore&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return cfg_.dir; }

  /// Hand the journaled state of `id` to the calling service and mark it
  /// attached. nullopt when no (usable) journal exists — a file with no
  /// valid declare record is renamed aside as `.corrupt` and treated as
  /// absent. Fails (nullopt + error) when another live service holds it.
  std::optional<RecoveredSession> claim(const std::string& id,
                                        std::string& error);

  /// Open the appender for `id`. `next_lsn` 0 starts a fresh file
  /// (truncating any stale bytes); nonzero resumes appending after a
  /// claim. Marks the session attached. Returns nullptr on I/O failure.
  std::unique_ptr<JournalWriter> open_writer(const std::string& id,
                                             std::uint64_t next_lsn);

  /// Seal-and-delete: clean close or eviction. Detaches.
  void remove(const std::string& id);

  /// Service teardown without close: keep the file, allow re-claim.
  void detach(const std::string& id);

  /// Number of session journals found on disk at construction.
  std::uint64_t recovered_at_start() const { return scanned_sessions_; }

  struct Stats {
    std::uint64_t scanned_sessions = 0;  ///< files present at startup
    std::uint64_t scanned_records = 0;   ///< valid records in them
    std::uint64_t torn_tails = 0;        ///< torn/corrupt tails skipped
    std::uint64_t corrupt_files = 0;     ///< files renamed aside
    std::uint64_t appends = 0;           ///< records written (all writers)
    std::uint64_t syncs = 0;             ///< fsyncs issued
    std::uint64_t failures = 0;          ///< write/fsync errors
    std::uint64_t claims = 0;            ///< sessions handed to a service
    std::uint64_t removed = 0;           ///< sealed-and-deleted journals
  };
  Stats stats() const;

  /// Journal file path for `id` (valid session ids are filesystem-safe).
  std::string path_for(const std::string& id) const;

 private:
  friend class JournalWriter;

  JournalStoreConfig cfg_;
  bool ok_ = false;
  std::string error_;
  std::uint64_t scanned_sessions_ = 0;

  mutable std::mutex mu_;
  std::set<std::string> attached_;

  // Writer-shared counters (writers run on their services' ingest
  // threads; healthz snapshots read them from any connection).
  std::atomic<std::uint64_t> scanned_records_{0};
  std::atomic<std::uint64_t> torn_tails_{0};
  std::atomic<std::uint64_t> corrupt_files_{0};
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> syncs_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> claims_{0};
  std::atomic<std::uint64_t> removed_{0};
};

}  // namespace lion::serve
