#include "serve/session.hpp"

#include "io/report_json.hpp"
#include "obs/json.hpp"

namespace lion::serve {

namespace {

void append_vec(std::string& out, const Vec3& v) {
  out.push_back('[');
  obs::append_json_number(out, v[0]);
  out.push_back(',');
  obs::append_json_number(out, v[1]);
  out.push_back(',');
  obs::append_json_number(out, v[2]);
  out.push_back(']');
}

std::string envelope(const char* schema, const std::string& session,
                     std::uint64_t seq) {
  std::string out = "{\"schema\":\"";
  out += schema;
  out += "\",\"session\":\"";
  out += obs::json_escape(session);
  out += "\",\"seq\":";
  out += std::to_string(seq);
  return out;
}

}  // namespace

bool make_session_config(const ParsedLine& line, SessionConfig& out,
                         std::string& error) {
  SessionConfig cfg;
  cfg.mode = line.mode;
  if (!line.center) {
    error = "session requires center=x,y,z (physical center for calibrate, "
            "phase center for track)";
    return false;
  }
  cfg.center = *line.center;
  if (line.wavelength) {
    cfg.calibration.adaptive.base.wavelength = *line.wavelength;
    cfg.localizer.wavelength = *line.wavelength;
  }
  if (cfg.mode == SessionMode::kTrack) {
    if (line.direction) cfg.belt_direction = *line.direction;
    if (cfg.belt_direction.norm() == 0.0) {
      error = "track session: belt direction must be non-zero";
      return false;
    }
    cfg.belt_direction = cfg.belt_direction.normalized();
    if (line.speed) cfg.belt_speed = *line.speed;
    if (line.window) cfg.window = *line.window;
    if (line.hop) cfg.hop = *line.hop;
    if (cfg.window < 8) {
      error = "track session: window must be >= 8 samples";
      return false;
    }
    if (cfg.hop == 0) {
      error = "track session: hop must be positive";
      return false;
    }
    cfg.localizer.target_dim = line.dim.value_or(2);
    cfg.localizer.side_hint = line.hint;
    if (line.smoothing) {
      error = "track session: smoothing= is a calibrate option";
      return false;
    }
  } else {
    // Calibrate-mode sessions take no tracker knobs: rejecting them loudly
    // beats silently ignoring a client's window=... typo.
    if (line.direction || line.speed || line.window || line.hop ||
        line.dim || line.hint) {
      error =
          "calibrate session accepts only center=, wavelength= and "
          "smoothing=";
      return false;
    }
    if (line.smoothing) {
      cfg.calibration.preprocess.smoothing_window = *line.smoothing;
    }
  }
  out = cfg;
  return true;
}

core::IncrementalTrackConfig incremental_config(const SessionConfig& config) {
  core::IncrementalTrackConfig out;
  out.antenna_phase_center = config.center;
  out.belt_direction = config.belt_direction;
  out.belt_speed = config.belt_speed;
  out.wavelength = config.localizer.wavelength;
  out.pair_interval = config.localizer.pair_interval;
  out.pair_tolerance = config.localizer.pair_tolerance;
  out.side_hint = config.localizer.side_hint;
  out.ransac = config.localizer.ransac;
  return out;
}

core::TrackFix solve_track_window(
    const std::vector<sim::PhaseSample>& window_samples,
    const SessionConfig& config) {
  core::TrackFix fix;
  if (window_samples.empty()) return fix;
  fix.t = window_samples.back().t;
  try {
    core::TrackerConfig tc;
    tc.antenna_phase_center = config.center;
    tc.belt_direction = config.belt_direction;
    tc.belt_speed = config.belt_speed;
    tc.window = window_samples.size();
    tc.hop = window_samples.size();
    tc.localizer = config.localizer;
    core::ConveyorTracker tracker(tc);
    for (const auto& s : window_samples) {
      if (const auto emitted = tracker.push(s)) return *emitted;
    }
  } catch (const std::exception&) {
    fix.valid = false;
  }
  return fix;
}

std::string report_response(const std::string& session, std::uint64_t seq,
                            const core::CalibrationReport& report,
                            const char* source) {
  std::string out = envelope("lion.report.v1", session, seq);
  out += ",\"source\":\"";
  out += source;
  out += "\",\"report\":";
  out += io::report_json(report);
  out.push_back('}');
  return out;
}

std::string fix_response(const std::string& session, std::uint64_t seq,
                         std::uint64_t window_index,
                         const core::TrackFix& fix) {
  std::string out = envelope("lion.fix.v1", session, seq);
  out += ",\"window\":";
  out += std::to_string(window_index);
  out += ",\"t\":";
  obs::append_json_number(out, fix.t);
  out += ",\"start\":";
  append_vec(out, fix.start);
  out += ",\"position\":";
  append_vec(out, fix.position);
  out += ",\"sigma\":";
  obs::append_json_number(out, fix.sigma);
  out += ",\"mean_residual\":";
  obs::append_json_number(out, fix.mean_residual);
  out += ",\"valid\":";
  out += fix.valid ? "true" : "false";
  out.push_back('}');
  return out;
}

std::string tick_response(const std::string& session, std::uint64_t seq,
                          std::uint64_t tick_index, const core::TrackFix& fix,
                          std::size_t rows, const char* source) {
  std::string out = envelope("lion.tick.v1", session, seq);
  out += ",\"tick\":";
  out += std::to_string(tick_index);
  out += ",\"t\":";
  obs::append_json_number(out, fix.t);
  out += ",\"start\":";
  append_vec(out, fix.start);
  out += ",\"position\":";
  append_vec(out, fix.position);
  out += ",\"sigma\":";
  obs::append_json_number(out, fix.sigma);
  out += ",\"rms\":";
  obs::append_json_number(out, fix.mean_residual);
  out += ",\"rows\":";
  out += std::to_string(rows);
  out += ",\"source\":\"";
  out += source;
  out += "\",\"valid\":";
  out += fix.valid ? "true" : "false";
  out.push_back('}');
  return out;
}

std::string error_response(const std::string& session, std::uint64_t seq,
                           const std::string& code,
                           const std::string& detail) {
  std::string out = envelope("lion.error.v1", session, seq);
  out += ",\"code\":\"";
  out += obs::json_escape(code);
  out += "\",\"detail\":\"";
  out += obs::json_escape(detail);
  out += "\"}";
  return out;
}

std::string event_response(std::uint64_t seq, const std::string& event,
                           const std::string& session, std::uint64_t value) {
  std::string out = "{\"schema\":\"lion.event.v1\",\"seq\":";
  out += std::to_string(seq);
  out += ",\"event\":\"";
  out += obs::json_escape(event);
  out += "\",\"session\":\"";
  out += obs::json_escape(session);
  out += "\",\"value\":";
  out += std::to_string(value);
  out.push_back('}');
  return out;
}

std::string trace_response(const std::string& session,
                           const std::vector<SpanRecord>& spans) {
  std::string out = "{\"schema\":\"lion.trace.v1\",\"session\":\"";
  out += obs::json_escape(session);
  out += "\",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i) out.push_back(',');
    const SpanRecord& s = spans[i];
    out += "{\"trace\":";
    out += std::to_string(s.trace_id);
    out += ",\"stage\":\"";
    out += obs::stage_name(s.stage);
    out += "\",\"start_ns\":";
    out += std::to_string(s.start_ns);
    out += ",\"dur_ns\":";
    out += std::to_string(s.dur_ns);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string restore_response(const std::string& session,
                             std::uint64_t records, std::uint64_t samples,
                             std::uint64_t flushes, bool torn) {
  std::string out = "{\"schema\":\"lion.restore.v1\",\"session\":\"";
  out += obs::json_escape(session);
  out += "\",\"records\":";
  out += std::to_string(records);
  out += ",\"samples\":";
  out += std::to_string(samples);
  out += ",\"flushes\":";
  out += std::to_string(flushes);
  out += ",\"torn\":";
  out += torn ? "true" : "false";
  out.push_back('}');
  return out;
}

}  // namespace lion::serve
