// Per-stream session state of the serving layer.
//
// A StreamSession is the unit of demultiplexing: one (antenna, tag) read
// stream with its own CSV layout state, sample buffer, and solver
// configuration. Calibrate-mode sessions accumulate the raw stream and
// solve on `!flush` through the exact one-shot path
// (`calibrate_antenna_robust` with the library-default config), which is
// what makes the stream-vs-batch conformance contract provable. Track-mode
// sessions window the stream like core::ConveyorTracker and schedule each
// completed window as an independent solve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/incremental.hpp"
#include "core/incremental_cal.hpp"
#include "core/tracker.hpp"
#include "io/csv.hpp"
#include "obs/obs.hpp"
#include "serve/journal.hpp"
#include "serve/wire.hpp"
#include "sim/reader.hpp"

namespace lion::serve {

/// One recorded request span, retained per session for `!trace <id>`.
/// Timestamps are trace_now_ns() values (monotonic, process-relative), so
/// spans correlate with the Chrome-trace ring but never enter a sequenced
/// response — the dump is out-of-band, outside the determinism contract.
struct SpanRecord {
  std::uint64_t trace_id = 0;  ///< ingest-assigned request trace id
  obs::Stage stage = obs::Stage::kIngest;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Spans retained per session (ring; oldest overwritten).
inline constexpr std::size_t kSessionSpanCap = 64;

/// Everything a session needs to turn buffered samples into responses.
struct SessionConfig {
  SessionMode mode = SessionMode::kCalibrate;
  /// Calibrate: the believed physical center. Track: the calibrated
  /// antenna phase center.
  Vec3 center{};
  /// Calibrate-mode solver settings. Defaults to the library-default
  /// RobustCalibrationConfig — the batch path's exact configuration, which
  /// the differential conformance suite depends on.
  core::RobustCalibrationConfig calibration{};
  /// Track-mode settings (mirrors core::TrackerConfig).
  Vec3 belt_direction{1.0, 0.0, 0.0};
  double belt_speed = 0.1;
  std::size_t window = 600;
  std::size_t hop = 300;
  core::LocalizerConfig localizer{};
};

/// Build a validated SessionConfig from a parsed `!session` line. Returns
/// false (and an error detail) instead of throwing — declaration errors
/// become lion.error.v1 responses.
bool make_session_config(const ParsedLine& line, SessionConfig& out,
                         std::string& error);

/// Incremental-solver configuration implied by a track-mode SessionConfig:
/// geometry from the session, pairing/wavelength/hint from its localizer,
/// consensus knobs from localizer.ransac. Gate and rebuild policy stay at
/// the IncrementalTrackConfig defaults.
core::IncrementalTrackConfig incremental_config(const SessionConfig& config);

/// One demultiplexed stream.
struct StreamSession {
  std::string id;
  SessionConfig config;
  io::CsvStreamParser csv;  ///< per-session CSV layout/header state

  /// Calibrate mode: the cumulative raw stream (flush solves all of it).
  std::vector<sim::PhaseSample> buffer;
  /// Track mode: the sliding window (ConveyorTracker semantics).
  std::deque<sim::PhaseSample> window_buffer;

  std::uint64_t last_active = 0;  ///< virtual-clock tick of last traffic
  std::size_t in_flight = 0;      ///< solve requests scheduled, not done
  /// Origin token of the connection whose declare created (or restored)
  /// this session; its teardown (release_origin) drops the session.
  std::uint64_t owner = 0;
  std::uint64_t samples_accepted = 0;
  std::uint64_t windows_scheduled = 0;
  std::uint64_t flushes = 0;

  /// Track mode: the per-session incremental solver behind `!tick <id>`.
  /// Mirrors window_buffer exactly (push on accept, retire on carve,
  /// clear on flush) — including during journal replay, so a restored
  /// session's tick stream matches an uninterrupted run byte for byte.
  /// Null for calibrate sessions and when construction failed (the pose
  /// tick then always takes the full-pipeline fallback).
  std::unique_ptr<core::IncrementalTrackSolver> incremental;
  std::uint64_t ticks_emitted = 0;  ///< pose ticks answered (both paths)

  /// Calibrate mode: the per-session incremental flush solver (memo +
  /// warm-started sweep, PR 10). Created lazily on the first `!flush`;
  /// its anchor advances only when a *full* batch solve completes
  /// (journaled as kCalAnchor), so replay rebuilds identical state by
  /// re-running the batch solve over the recorded sample-count prefix.
  /// Null for track sessions.
  std::unique_ptr<core::IncrementalCalibrationSolver> cal;

  /// Durability (journal-enabled services only). `journal` appends one
  /// record per applied mutation; a write failure latches
  /// `journal_degraded` and the session keeps serving non-durably.
  std::unique_ptr<JournalWriter> journal;
  bool journal_degraded = false;
  std::uint64_t restored_records = 0;  ///< records replayed at restore

  /// Telemetry (observation only, never feeds a response payload).
  /// RED counters: requests scheduled for this session, error responses
  /// attributed to it, and the distribution of its solve durations.
  std::uint64_t requests = 0;
  std::uint64_t request_errors = 0;
  obs::HistogramData solve_seconds{obs::duration_bounds()};
  /// Recent request spans for `!trace <id>` (bounded ring).
  std::vector<SpanRecord> spans;
  std::size_t span_head = 0;  ///< oldest entry once the ring is full
};

/// `!trace <id>` answer (lion.trace.v1, out-of-band): the session's
/// retained spans, oldest first.
std::string trace_response(const std::string& session,
                           const std::vector<SpanRecord>& spans);

/// Solve one track window exactly as the streaming ConveyorTracker would:
/// a fresh tracker over just these samples (hop/window-invariance — pinned
/// by the metamorphic suite — makes this equal to the in-place streaming
/// solve). Never throws; an unsolvable window yields valid == false.
core::TrackFix solve_track_window(
    const std::vector<sim::PhaseSample>& window_samples,
    const SessionConfig& config);

// ---------------------------------------------------------------------------
// Response serialization (deterministic: fixed key order, %.17g numbers).
// ---------------------------------------------------------------------------

/// `!flush` answer for a calibrate session (lion.report.v1). `source` is
/// "memo" when the buffer digest still matched the anchor snapshot,
/// "incremental" when the warm-started sweep passed every gate, and
/// "fallback" when the full batch pipeline ran; all three serialize
/// through this one function so the bytes differ only in the tag (and
/// the fallback tag marks the report the other two must match byte for
/// byte — the conformance contract of the incremental tier).
std::string report_response(const std::string& session, std::uint64_t seq,
                            const core::CalibrationReport& report,
                            const char* source);

std::string fix_response(const std::string& session, std::uint64_t seq,
                         std::uint64_t window_index,
                         const core::TrackFix& fix);

/// `!tick <id>` answer (lion.tick.v1). `source` is "incremental" when the
/// maintained normal equations produced the pose and "fallback" when the
/// residual gate routed the request through the full window solve; both
/// paths serialize through this one function so the bytes differ only in
/// the values.
std::string tick_response(const std::string& session, std::uint64_t seq,
                          std::uint64_t tick_index, const core::TrackFix& fix,
                          std::size_t rows, const char* source);

std::string error_response(const std::string& session, std::uint64_t seq,
                           const std::string& code,
                           const std::string& detail);

std::string event_response(std::uint64_t seq, const std::string& event,
                           const std::string& session, std::uint64_t value);

/// Restore acknowledgement, emitted out-of-band (no seq) when a declare
/// adopts a journaled session. `records` counts journal records including
/// the declare — the client's resume cursor.
std::string restore_response(const std::string& session,
                             std::uint64_t records, std::uint64_t samples,
                             std::uint64_t flushes, bool torn);

}  // namespace lion::serve
