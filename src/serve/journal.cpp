#include "serve/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace lion::serve {

namespace {

// Little-endian field helpers: the frame layout is defined byte-wise so
// the files are portable across hosts regardless of native endianness.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

// type(1) + lsn(8) + tick(8) + seq(8)
constexpr std::size_t kPayloadHeader = 25;
constexpr std::size_t kFrameHeader = 8;  // crc(4) + len(4)

// %.17g keeps IEEE doubles round-trip exact, and — unlike the obs JSON
// emitter, which maps non-finite values to null — prints nan/inf tokens
// the wire number parser (strtod) reads back verbatim.
void append_exact_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

// Loop a full write(); short writes and EINTR are retried.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Read a whole file without iostreams (the recovery path must not throw).
bool read_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

}  // namespace

std::uint32_t journal_crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_journal_record(const JournalRecord& record) {
  std::string payload;
  payload.reserve(kPayloadHeader + record.line.size());
  payload.push_back(static_cast<char>(record.type));
  put_u64(payload, record.lsn);
  put_u64(payload, record.tick);
  put_u64(payload, record.seq);
  payload += record.line;

  std::string out;
  out.reserve(kFrameHeader + payload.size());
  put_u32(out, journal_crc32(payload));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

JournalDecode decode_journal_records(std::string_view data,
                                     std::uint64_t first_lsn) {
  JournalDecode out;
  std::size_t pos = 0;
  std::uint64_t expect_lsn = first_lsn;
  while (pos + kFrameHeader <= data.size()) {
    const std::uint32_t crc = get_u32(data.data() + pos);
    const std::uint32_t len = get_u32(data.data() + pos + 4);
    if (len < kPayloadHeader || len > kJournalMaxPayload) break;
    if (pos + kFrameHeader + len > data.size()) break;  // torn mid-record
    const std::string_view payload = data.substr(pos + kFrameHeader, len);
    if (journal_crc32(payload) != crc) break;
    const std::uint8_t type_raw =
        static_cast<std::uint8_t>(static_cast<unsigned char>(payload[0]));
    if (type_raw < static_cast<std::uint8_t>(JournalRecordType::kDeclare) ||
        type_raw > static_cast<std::uint8_t>(JournalRecordType::kCalAnchor)) {
      break;
    }
    JournalRecord rec;
    rec.type = static_cast<JournalRecordType>(type_raw);
    rec.lsn = get_u64(payload.data() + 1);
    rec.tick = get_u64(payload.data() + 9);
    rec.seq = get_u64(payload.data() + 17);
    if (rec.lsn != expect_lsn) break;  // a gap means the frame lies
    rec.line.assign(payload.data() + kPayloadHeader,
                    payload.size() - kPayloadHeader);
    out.records.push_back(std::move(rec));
    pos += kFrameHeader + len;
    ++expect_lsn;
  }
  out.consumed = pos;
  out.torn = pos != data.size();
  return out;
}

std::string normalize_declare_line(const ParsedLine& line) {
  std::string out = "!session ";
  out += line.session;
  out += line.mode == SessionMode::kTrack ? " mode=track" : " mode=calibrate";
  const auto vec = [&out](const char* key, const Vec3& v) {
    out.push_back(' ');
    out += key;
    out.push_back('=');
    append_exact_number(out, v[0]);
    out.push_back(',');
    append_exact_number(out, v[1]);
    out.push_back(',');
    append_exact_number(out, v[2]);
  };
  const auto num = [&out](const char* key, double v) {
    out.push_back(' ');
    out += key;
    out.push_back('=');
    append_exact_number(out, v);
  };
  if (line.center) vec("center", *line.center);
  if (line.direction) vec("dir", *line.direction);
  if (line.hint) vec("hint", *line.hint);
  if (line.speed) num("speed", *line.speed);
  if (line.wavelength) num("wavelength", *line.wavelength);
  if (line.window) num("window", static_cast<double>(*line.window));
  if (line.hop) num("hop", static_cast<double>(*line.hop));
  if (line.dim) num("dim", static_cast<double>(*line.dim));
  if (line.smoothing) num("smoothing", static_cast<double>(*line.smoothing));
  return out;
}

std::string canonical_sample_line(const sim::PhaseSample& sample) {
  std::string out = "{\"x\":";
  append_exact_number(out, sample.position[0]);
  out += ",\"y\":";
  append_exact_number(out, sample.position[1]);
  out += ",\"z\":";
  append_exact_number(out, sample.position[2]);
  out += ",\"phase\":";
  append_exact_number(out, sample.phase);
  out += ",\"rssi\":";
  append_exact_number(out, sample.rssi_dbm);
  out += ",\"channel\":";
  out += std::to_string(sample.channel);
  out += ",\"t\":";
  append_exact_number(out, sample.t);
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------------
// JournalWriter
// ---------------------------------------------------------------------------

JournalWriter::JournalWriter(JournalStore* store, std::string path,
                             std::uint64_t next_lsn, std::size_t fsync_every,
                             bool truncate)
    : store_(store),
      path_(std::move(path)),
      next_lsn_(next_lsn),
      fsync_every_(fsync_every == 0 ? 1 : fsync_every) {
  int flags = O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) return;
  if (truncate) {
    if (!write_all(fd_, kJournalMagic, sizeof kJournalMagic)) {
      failed_ = true;
    }
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) sync();
    ::close(fd_);
    fd_ = -1;
  }
}

bool JournalWriter::append(JournalRecordType type, std::string_view line,
                           std::uint64_t tick, std::uint64_t seq) {
  if (!ok()) return false;
  // Ingest-hot path: frame the record in a reused buffer (header patched
  // in after the payload CRC is known) so one append is one allocation-
  // free write().
  std::string& frame = scratch_;
  frame.clear();
  frame.append(kFrameHeader, '\0');
  frame.push_back(static_cast<char>(type));
  put_u64(frame, next_lsn_);
  put_u64(frame, tick);
  put_u64(frame, seq);
  frame.append(line);
  const std::string_view payload =
      std::string_view(frame).substr(kFrameHeader);
  std::string header;
  put_u32(header, journal_crc32(payload));
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  frame.replace(0, kFrameHeader, header);
  if (!write_all(fd_, frame.data(), frame.size())) {
    failed_ = true;
    store_->failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++next_lsn_;
  ++unsynced_;
  store_->appends_.fetch_add(1, std::memory_order_relaxed);
  if (unsynced_ >= fsync_every_) return sync();
  return true;
}

bool JournalWriter::sync() {
  if (!ok()) return false;
  if (unsynced_ == 0) return true;
  if (::fsync(fd_) != 0) {
    failed_ = true;
    store_->failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  unsynced_ = 0;
  store_->syncs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// JournalStore
// ---------------------------------------------------------------------------

JournalStore::JournalStore(JournalStoreConfig config)
    : cfg_(std::move(config)) {
  if (cfg_.dir.empty()) {
    error_ = "journal: empty directory path";
    return;
  }
  if (::mkdir(cfg_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    error_ = std::string("journal: mkdir ") + cfg_.dir + ": " +
             std::strerror(errno);
    return;
  }
  // Startup scan: count journals and their valid records so operators
  // (and the healthz surface) see what a restart inherited. The files
  // themselves stay untouched until a session is claimed.
  ::DIR* dir = ::opendir(cfg_.dir.c_str());
  if (dir == nullptr) {
    error_ = std::string("journal: opendir ") + cfg_.dir + ": " +
             std::strerror(errno);
    return;
  }
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const std::string suffix = ".lionj";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    std::string bytes;
    if (!read_file(cfg_.dir + "/" + name, bytes)) continue;
    ++scanned_sessions_;
    if (bytes.size() < sizeof kJournalMagic ||
        std::memcmp(bytes.data(), kJournalMagic, sizeof kJournalMagic) != 0) {
      torn_tails_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const JournalDecode decode = decode_journal_records(
        std::string_view(bytes).substr(sizeof kJournalMagic));
    scanned_records_.fetch_add(decode.records.size(),
                               std::memory_order_relaxed);
    if (decode.torn) torn_tails_.fetch_add(1, std::memory_order_relaxed);
  }
  ::closedir(dir);
  ok_ = true;
}

std::string JournalStore::path_for(const std::string& id) const {
  return cfg_.dir + "/" + id + ".lionj";
}

std::optional<RecoveredSession> JournalStore::claim(const std::string& id,
                                                    std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (attached_.count(id) != 0) {
    error = "journal: session '" + id + "' is attached to a live connection";
    return std::nullopt;
  }
  const std::string path = path_for(id);
  std::string bytes;
  if (!read_file(path, bytes)) return std::nullopt;  // no journal: fresh

  const auto discard_corrupt = [&] {
    // Unusable file (no magic / no declare): move it aside so the fresh
    // session's writer does not append to garbage, keep it for forensics.
    corrupt_files_.fetch_add(1, std::memory_order_relaxed);
    ::rename(path.c_str(), (path + ".corrupt").c_str());
  };

  if (bytes.size() < sizeof kJournalMagic ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof kJournalMagic) != 0) {
    discard_corrupt();
    return std::nullopt;
  }
  JournalDecode decode = decode_journal_records(
      std::string_view(bytes).substr(sizeof kJournalMagic));
  if (decode.records.empty() ||
      decode.records.front().type != JournalRecordType::kDeclare) {
    discard_corrupt();
    return std::nullopt;
  }
  if (decode.torn) {
    // Drop the torn tail from the file as well, so the resumed writer
    // appends immediately after the last valid record.
    torn_tails_.fetch_add(1, std::memory_order_relaxed);
    ::truncate(path.c_str(), static_cast<off_t>(sizeof kJournalMagic +
                                                decode.consumed));
  }

  RecoveredSession out;
  out.id = id;
  out.declare_line = decode.records.front().line;
  out.record_count = decode.records.size();
  out.client_records = 0;
  for (const JournalRecord& r : decode.records) {
    if (r.type != JournalRecordType::kCalAnchor) ++out.client_records;
  }
  out.last_tick = decode.records.back().tick;
  out.last_seq = decode.records.back().seq;
  out.torn = decode.torn;
  decode.records.erase(decode.records.begin());
  out.records = std::move(decode.records);
  attached_.insert(id);
  claims_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::unique_ptr<JournalWriter> JournalStore::open_writer(
    const std::string& id, std::uint64_t next_lsn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    attached_.insert(id);
  }
  std::unique_ptr<JournalWriter> writer(
      new JournalWriter(this, path_for(id), next_lsn, cfg_.fsync_every,
                        /*truncate=*/next_lsn == 0));
  if (!writer->ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    attached_.erase(id);
    return nullptr;
  }
  return writer;
}

void JournalStore::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  ::unlink(path_for(id).c_str());
  attached_.erase(id);
  removed_.fetch_add(1, std::memory_order_relaxed);
}

void JournalStore::detach(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  attached_.erase(id);
}

JournalStore::Stats JournalStore::stats() const {
  Stats out;
  out.scanned_sessions = scanned_sessions_;
  out.scanned_records = scanned_records_.load(std::memory_order_relaxed);
  out.torn_tails = torn_tails_.load(std::memory_order_relaxed);
  out.corrupt_files = corrupt_files_.load(std::memory_order_relaxed);
  out.appends = appends_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.claims = claims_.load(std::memory_order_relaxed);
  out.removed = removed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace lion::serve
