// Transports for the streaming calibration service.
//
// Two front-ends over the same StreamService core:
//
//   - run_stdio(): one service over a byte stream pair — `lion_cli serve`
//     piping stdin to stdout, and the unit tests driving istringstreams.
//   - SocketServer: a TCP (127.0.0.1-style) or Unix-domain listener built
//     as a non-blocking event loop (serve/event_loop.hpp) in front of a
//     fixed set of *ingest shards*.
//
// Sharded ingest
// --------------
// One front-end thread owns the listener, every connection fd, and the
// per-connection line splitter. It classifies each complete line with
// parse_line() and routes it — by FNV-1a hash of the line's session id —
// to one of `shards` ingest shards. Each shard is a single thread owning
// one StreamService: its own session namespace slice, virtual clock,
// sequence space, reorder buffer, and journal writers. All shards share
// one solver ThreadPool.
//
// Because a session id hashes to exactly one shard, every line of a
// session is handled by one single-threaded service in arrival order —
// the per-session determinism contract of service.hpp carries over
// unchanged for any shard count. `!stats` / `!healthz` / `!tick <n>`
// lines fan out to every shard (each answers for its slice; responses
// carry "shard"/"shards" fields when shards > 1). With `--shards 1` the
// fan-out degenerates to shard 0 and the emitted byte stream is exactly
// the pre-shard wire format.
//
// Backpressure
// ------------
// Shard ingest queues are bounded (shard_queue_limit lines). When a
// connection's batch does not fit, the batch is parked on the connection
// and its read interest is dropped — the kernel socket buffer, and then
// the client's TCP window, absorb the stall. Only connections feeding
// the full shard stall; traffic to other shards keeps flowing. Response
// writes happen on the shard threads (blocking send), so a client that
// stops reading stalls — at worst — the one shard its sessions live on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace lion::serve {

/// Run one service over an input/output stream pair until EOF. Responses
/// are written one per line and flushed per line (interactive pipes).
/// Returns the number of response lines written.
std::uint64_t run_stdio(const ServiceConfig& config, std::istream& in,
                        std::ostream& out);

/// Stable shard routing hash (FNV-1a 64). Exposed so tests can pin the
/// id -> shard mapping across releases: journaled sessions must restore
/// onto the same shard after a restart.
std::uint64_t shard_hash(std::string_view session_id);

struct ServerConfig {
  ServiceConfig service;      ///< per-shard service settings
  std::string unix_path;      ///< non-empty: listen on this Unix socket
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;          ///< >= 0: listen on TCP (0 = ephemeral)
  std::size_t max_connections = 64;
  /// Ingest shards (service instances). 1 = the conformance-mode single
  /// pipeline; response bytes are then identical to the pre-shard server.
  std::size_t shards = 1;
  /// listen(2) backlog. A fleet connecting en masse overflows a small
  /// backlog into client-visible connect timeouts, so the default is
  /// sized for burst accepts, not the old implicit 16.
  int backlog = 1024;
  /// TCP only: SO_REUSEPORT on the listener, so an external supervisor
  /// can run several server processes behind one port.
  bool reuseport = false;
  /// Per-shard ingest queue bound, in wire lines. A connection whose
  /// batch would overflow the target shard is parked (read interest off)
  /// until the shard drains.
  std::size_t shard_queue_limit = 16384;
  /// Use the portable poll() backend even where epoll is available
  /// (conformance tests run both).
  bool force_poll = false;
};

/// Event-loop socket server; one of unix_path / tcp_port selects the
/// listener (unix_path wins when both are set).
class SocketServer {
 public:
  explicit SocketServer(ServerConfig config);
  ~SocketServer();  ///< stop()s if still running

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + spawn the front-end and shard threads. False (with a
  /// reason in `error`) on any socket failure; the server is then inert.
  bool start(std::string& error);

  /// Actual bound TCP port (after an ephemeral bind), or -1 for Unix.
  int port() const { return port_; }

  /// Close the listener, drain every connection (EOF semantics: splitter
  /// tails flush, in-flight solves finish, responses flush), join all
  /// threads. Safe to call twice.
  void stop();

  /// Graceful drain with a deadline: stop accepting, half-close every
  /// connection, and wait up to `timeout_s` seconds for the drain.
  /// Returns true on a clean drain. On deadline the front-end and shard
  /// threads are detached and the shard services, pool, and connection
  /// records are deliberately leaked (still in use by live threads) — the
  /// caller is expected to exit the process without running static
  /// destructors. timeout_s < 0 waits forever (== stop()).
  bool stop_with_timeout(double timeout_s);

  std::uint64_t connections_served() const {
    return connections_served_.load(std::memory_order_relaxed);
  }

  /// Connections currently live (accepted, not yet torn down).
  std::uint64_t live_connections() const {
    return live_connections_.load(std::memory_order_relaxed);
  }

  /// Readiness backend actually in use ("epoll" or "poll"); empty before
  /// start().
  std::string poller_name() const;

  /// Telemetry snapshot: one entry per ingest shard (shard identity and
  /// queue gauges filled in). Safe to call concurrently with traffic, but
  /// it takes each shard service's lock — a shard wedged in a blocking
  /// send to a slow consumer blocks the snapshot until that client reads
  /// (or vanishes). Use shard_gauges() where that would be fatal.
  std::vector<ServiceTelemetry> telemetry() const;

  /// Per-shard ingest-queue gauges from the lock-free atomic mirrors.
  /// Never blocks — in particular not on a shard stalled by backpressure,
  /// which is precisely when the queue depths are worth scraping.
  std::vector<ShardGauges> shard_gauges() const;

 private:
  /// One queued unit of shard work. kLines carries a newline-joined batch
  /// of complete wire lines from one connection (split back with `count`);
  /// kOversized reports splitter-dropped lines; kEoc is the connection's
  /// end-of-stream marker (fan-out: every shard releases the origin and
  /// acks back to the front-end).
  struct ShardItem {
    enum Kind { kLines, kOversized, kEoc } kind = kLines;
    std::uint64_t origin = 0;
    std::string blob;
    std::size_t count = 0;  ///< kLines: lines in blob; kOversized: drops
  };

  /// The shard thread's response path: origin -> writer lookup happens
  /// under sinks_mu_, the send itself under the writer's own mutex — so a
  /// blocked send (client not reading) stalls only that shard thread,
  /// never the lookup path of other shards.
  struct ConnWriter {
    int fd = -1;
    std::mutex mu;
  };

  struct Shard {
    std::unique_ptr<StreamService> service;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ShardItem> items;
    std::size_t queued_lines = 0;  ///< kLines totals only; guarded by mu
    bool stopped = false;
    /// Lock-free mirrors for telemetry/healthz gauges.
    std::atomic<std::uint64_t> depth{0};
    std::atomic<std::uint64_t> hwm{0};
    std::atomic<std::uint64_t> stalls{0};
  };

  /// Front-end-thread-only connection state.
  struct Conn {
    int fd = -1;
    std::uint64_t origin = 0;
    ChunkDecoder decoder;
    /// Routing mirror of the service-side "current session": set
    /// optimistically on `!session`, cleared on `!close`, set to
    /// "default" when a bare data line auto-opens the implicit session.
    std::string mirror;
    /// Batches that did not fit their shard queue, in delivery order.
    std::deque<std::pair<std::size_t, ShardItem>> parked;
    bool eof = false;           ///< read side done (splitter tail flushed)
    bool eoc_sent = false;      ///< kEoc fanned out to every shard
    std::size_t acks_pending = 0;
    std::shared_ptr<ConnWriter> writer;

    explicit Conn(std::size_t max_line_bytes) : decoder(max_line_bytes) {}
  };

  bool open_listener(std::string& error);
  void front_loop();
  void shard_loop(std::size_t index);
  void wake();  ///< rouse the front-end (self-pipe)

  // Front-end helpers (front-end thread only).
  void accept_ready();
  void read_ready(Conn& conn);
  void route_lines(Conn& conn, const ChunkDecoder::Lines& lines);
  /// Classify one complete wire line and pick its target shard (or set
  /// `broadcast`). Allocation-free for the hot paths (bare CSV rows, `@`
  /// routes, control lines); mirrors parse_line()'s classification so a
  /// line and its responses land on the shard that owns its session.
  /// Updates the connection's routing mirror for `!session` / `!close` /
  /// implicit-default lines.
  std::size_t route_of(Conn& conn, std::string_view line, bool& broadcast);
  /// Moves from `item` only on success (the caller parks it otherwise).
  bool try_push(std::size_t shard, ShardItem& item);
  void push_or_park(Conn& conn, std::size_t shard, ShardItem item);
  void retry_parked();
  void send_eoc(Conn& conn);
  void on_conn_eof(Conn& conn);
  void finalize_acked();

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int port_ = -1;
  bool listener_unix_ = false;
  /// Self-pipe: shard threads write one byte so the front-end wakes to
  /// collect EOC acks and to retry parked batches after a drain.
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> abandon_{false};
  std::atomic<std::uint64_t> connections_served_{0};
  std::atomic<std::uint64_t> live_connections_{0};
  /// Nonzero while any connection has parked batches: shard threads poke
  /// the self-pipe after draining work so the front-end retries promptly.
  std::atomic<std::size_t> parked_conns_{0};

  std::unique_ptr<Poller> poller_;  ///< front-end thread only after start
  std::thread front_thread_;
  /// Guards the shards_ vector itself (created in start(), cleared after
  /// the shard threads join); the Shard contents have their own locks.
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<engine::ThreadPool> pool_;  ///< shared solver pool

  /// fd -> connection and origin -> fd; front-end thread only.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<std::uint64_t, int> origin_fds_;
  std::uint64_t next_origin_ = 1;  ///< 0 is the stdio/anonymous origin

  mutable std::mutex sinks_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ConnWriter>> sinks_;

  std::mutex ack_mu_;
  std::vector<std::uint64_t> acked_origins_;  ///< EOC acks from shards

  /// Front-end completion handshake for stop_with_timeout().
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool front_done_ = false;
};

}  // namespace lion::serve
