// Transports for the streaming calibration service.
//
// Two front-ends over the same StreamService core:
//
//   - run_stdio(): one service over a byte stream pair — `lion_cli serve`
//     piping stdin to stdout, and the unit tests driving istringstreams.
//   - SocketServer: a TCP (127.0.0.1-style) or Unix-domain listener. Each
//     accepted connection gets its *own* StreamService — an isolated
//     session namespace and virtual clock — while all connections share
//     one solver ThreadPool, so a chatty client cannot starve another of
//     threads by name collisions, only by actual solve load.
//
// The server is deliberately thread-per-connection: the expected client
// count is "a handful of reader gateways", not C10K, and blocking reads
// keep the data path identical to the stdio one (same ingest_bytes calls,
// same backpressure semantics through the socket's flow control).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.hpp"
#include "serve/service.hpp"

namespace lion::serve {

/// Run one service over an input/output stream pair until EOF. Responses
/// are written one per line and flushed per line (interactive pipes).
/// Returns the number of response lines written.
std::uint64_t run_stdio(const ServiceConfig& config, std::istream& in,
                        std::ostream& out);

struct ServerConfig {
  ServiceConfig service;      ///< per-connection service settings
  std::string unix_path;      ///< non-empty: listen on this Unix socket
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;          ///< >= 0: listen on TCP (0 = ephemeral)
  std::size_t max_connections = 64;
};

/// Blocking-accept socket server; one of unix_path / tcp_port selects the
/// listener (unix_path wins when both are set).
class SocketServer {
 public:
  explicit SocketServer(ServerConfig config);
  ~SocketServer();  ///< stop()s if still running

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + spawn the accept thread. False (with a reason in
  /// `error`) on any socket failure; the server is then inert.
  bool start(std::string& error);

  /// Actual bound TCP port (after an ephemeral bind), or -1 for Unix.
  int port() const { return port_; }

  /// Close the listener, wake every connection, join all threads. Safe to
  /// call twice. In-flight solves finish and responses flush first.
  void stop();

  /// Graceful drain with a deadline: stop accepting, half-close every
  /// connection (the client sees EOF and its responses still flush), and
  /// wait up to `timeout_s` seconds for the handlers to finish. Returns
  /// true on a clean drain. On deadline the stragglers are detached and
  /// their Connection records and the shared pool are deliberately leaked
  /// (they are still in use by live threads) — the caller is expected to
  /// exit the process without running static destructors. timeout_s < 0
  /// waits forever (== stop()).
  bool stop_with_timeout(double timeout_s);

  std::uint64_t connections_served() const {
    return connections_served_.load(std::memory_order_relaxed);
  }

  /// Telemetry snapshot of every live connection's service (scrape
  /// endpoint fodder). Each handler publishes its stack-owned service
  /// pointer under mu_ for exactly its lifetime, so the walk is safe to
  /// run concurrently with connects/disconnects.
  std::vector<ServiceTelemetry> telemetry() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    StreamService* service = nullptr;  ///< guarded by SocketServer::mu_
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  void reap_finished_locked();
  void wake();  ///< rouse the accept loop (self-pipe)

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int port_ = -1;
  /// Self-pipe: finished connections write one byte so the accept loop
  /// wakes to reap them immediately instead of polling on a timer.
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_served_{0};
  std::thread accept_thread_;
  mutable std::mutex mu_;  ///< also taken by const telemetry walks
  std::condition_variable drain_cv_;  ///< signaled as handlers finish
  std::vector<std::unique_ptr<Connection>> connections_;
  std::unique_ptr<engine::ThreadPool> pool_;  ///< shared solver pool
};

}  // namespace lion::serve
