// Wire format of the streaming calibration service.
//
// The service speaks a newline-delimited text protocol so any reader
// middleware (or `nc` + a CSV file) can drive it. One line is one record:
//
//   # comment / blank            ignored
//   !session <id> key=value...   open a session and make it *current*
//   !flush <id>                  solve the session's buffer now -> report
//   !close <id>                  flush (calibrate mode) and evict
//   !tick <n>                    advance the virtual clock by n ticks
//   !tick <id>                   emit an incremental pose for track
//                                session <id> now (no window wait); the
//                                argument is a clock count when its first
//                                char is a digit / sign / '.', a session
//                                id otherwise — so ids starting with one
//                                of those characters cannot be pose-ticked
//   !stats                       emit a lion.stats.v1 snapshot line
//   !healthz                     emit a lion.health.v1 snapshot line
//                                (out-of-band: carries no seq — see
//                                service.hpp "Out-of-band responses")
//   !trace <id>                  emit a lion.trace.v1 dump of session
//                                <id>'s recent request spans (out-of-band,
//                                like !healthz)
//   @<id> x,y,z,phase[,...]      CSV read record routed to session <id>
//   {"session":"id","x":..,...}  JSON read record (flat object)
//   x,y,z,phase[,rssi[,ch[,t]]]  CSV read record for the *current* session
//
// Bare CSV lines (including a column-naming header row) go to the most
// recently declared session, so streaming a canonical scan CSV after one
// `!session` line reproduces the batch pipeline byte for byte — the
// stream-vs-batch conformance suite feeds the golden fixtures exactly
// this way.
//
// Everything here is non-throwing: network bytes must never unwind a
// server thread. Malformed input maps to ParsedLine::kError with a
// detail message the service turns into a lion.error.v1 response.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/vec.hpp"
#include "sim/reader.hpp"

namespace lion::serve {

using linalg::Vec3;

/// Hard cap on one wire line; longer lines are dropped (with an error
/// status) and the stream resynchronizes at the next newline.
inline constexpr std::size_t kDefaultMaxLineBytes = 1 << 16;

// ---------------------------------------------------------------------------
// Chunk reassembly
// ---------------------------------------------------------------------------

/// Reassembles arbitrary byte chunks into complete lines. The transport
/// (socket reads, stdin buffers) chooses chunk boundaries; the decoder
/// guarantees the line stream is independent of them.
class ChunkDecoder {
 public:
  explicit ChunkDecoder(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_(max_line_bytes) {}

  struct Lines {
    std::vector<std::string> lines;     ///< complete lines, newline stripped
    std::size_t oversized_dropped = 0;  ///< lines dropped for length
  };

  /// Feed a chunk; returns every line completed by it. A line longer than
  /// the cap is discarded up to its terminating newline and counted.
  Lines feed(std::string_view bytes);

  /// Flush the trailing unterminated line, if any (end of stream).
  Lines finish();

  /// Bytes buffered waiting for a newline.
  std::size_t pending() const { return partial_.size(); }

 private:
  std::size_t max_line_;
  std::string partial_;
  bool discarding_ = false;  ///< inside an oversized line, seeking '\n'
};

// ---------------------------------------------------------------------------
// Line grammar
// ---------------------------------------------------------------------------

/// Session modes (see SessionConfig in session.hpp for the knobs).
enum class SessionMode { kCalibrate, kTrack };

/// One decoded wire line.
struct ParsedLine {
  enum Kind {
    kComment,   ///< blank / '#' — ignored
    kSession,   ///< !session
    kFlush,     ///< !flush
    kClose,     ///< !close
    kTick,      ///< !tick <n> (clock advance)
    kPoseTick,  ///< !tick <id> (incremental pose request)
    kStats,     ///< !stats
    kHealthz,   ///< !healthz
    kTrace,     ///< !trace <id> (span dump)
    kData,      ///< a read record (CSV payload or decoded JSON sample)
    kError,     ///< malformed; `error` has the detail
  };

  Kind kind = kComment;
  std::string session;  ///< target session id ("" = current, for kData)
  std::string error;

  // kSession payload:
  SessionMode mode = SessionMode::kCalibrate;
  std::optional<Vec3> center;
  std::optional<Vec3> direction;
  std::optional<Vec3> hint;
  std::optional<double> speed;
  std::optional<double> wavelength;
  std::optional<std::size_t> window;
  std::optional<std::size_t> hop;
  std::optional<std::size_t> dim;
  /// Calibrate only: preprocess moving-average width (1 disables). The
  /// default (library) width re-smooths old samples whenever the buffer
  /// grows, which keeps the incremental flush tier on its drift gate; a
  /// client that wants warm `!flush` answers on a clean rig declares
  /// smoothing=1.
  std::optional<std::size_t> smoothing;

  // kTick payload:
  std::uint64_t ticks = 0;

  // kData payload: either a raw CSV row (parsed later by the session's
  // stateful CsvStreamParser, which owns header/layout state) or an
  // already-decoded JSON sample.
  std::string csv_row;
  std::optional<sim::PhaseSample> json_sample;
};

/// Decode one line. Never throws; malformed input yields kError.
ParsedLine parse_line(std::string_view line);

/// Valid session ids: 1..64 chars from [A-Za-z0-9_.:-]. Keeps ids safe to
/// echo into JSON responses and log lines without quoting surprises.
bool valid_session_id(std::string_view id);

}  // namespace lion::serve
