#include "serve/telemetry.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"
#include "obs/process.hpp"
#include "obs/prometheus.hpp"

namespace lion::serve {

namespace {

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void send_response(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  send_all(fd, out.data(), out.size());
}

/// One labelled histogram family: TYPE header once, then per-session
/// cumulative buckets + sum + count. append_prometheus_sample's empty
/// type skips repeat headers.
void append_session_histogram(std::string& out, const std::string& family,
                              const std::vector<ServiceTelemetry>& services) {
  out += "# TYPE ";
  out += family;
  out += " histogram\n";
  char buf[40];
  for (const ServiceTelemetry& svc : services) {
    for (const SessionTelemetry& s : svc.sessions) {
      const std::string label_base =
          "session=\"" + obs::prometheus_label_escape(s.id) + "\"";
      const obs::HistogramData& h = s.solve_seconds;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cum += h.buckets()[i];
        std::snprintf(buf, sizeof buf, "%g", h.bounds()[i]);
        obs::append_prometheus_sample(
            out, family + "_bucket", label_base + ",le=\"" + buf + "\"",
            static_cast<double>(cum), "");
      }
      cum += h.buckets().empty() ? 0 : h.buckets().back();
      obs::append_prometheus_sample(out, family + "_bucket",
                                    label_base + ",le=\"+Inf\"",
                                    static_cast<double>(cum), "");
      obs::append_prometheus_sample(out, family + "_sum", label_base, h.sum(),
                                    "");
      obs::append_prometheus_sample(out, family + "_count", label_base,
                                    static_cast<double>(h.count()), "");
    }
  }
}

void append_session_counter(
    std::string& out, const std::string& family,
    const std::vector<ServiceTelemetry>& services,
    const std::function<double(const SessionTelemetry&)>& get,
    const char* type = "counter") {
  bool first = true;
  for (const ServiceTelemetry& svc : services) {
    for (const SessionTelemetry& s : svc.sessions) {
      obs::append_prometheus_sample(
          out, family, "session=\"" + obs::prometheus_label_escape(s.id) + "\"",
          get(s), first ? type : "");
      first = false;
    }
  }
}

}  // namespace

std::string render_metrics_body(const std::vector<ServiceTelemetry>& services,
                                const obs::EventLog* events,
                                const std::vector<ShardGauges>& shards,
                                std::int64_t connections) {
  // 1. The process-wide registry (stage histograms, serve.* counters).
  std::string out =
      obs::prometheus_render(obs::MetricsRegistry::instance().snapshot());

  // 2. Process gauges.
  obs::append_prometheus_sample(
      out, "lion_process_rss_bytes", "",
      static_cast<double>(obs::process_rss_bytes()), "gauge");
  obs::append_prometheus_sample(
      out, "lion_process_open_fds", "",
      static_cast<double>(obs::process_open_fds()), "gauge");

  // 3. Aggregate serve gauges across every live connection's service.
  double sessions = 0, reorder_hwm = 0, journal_lag = 0, journal_degraded = 0;
  double restores = 0, tick_fallbacks = 0, pose_ticks = 0;
  double cal_flushes = 0, cal_memo = 0, cal_incremental = 0;
  double cal_fallbacks = 0;
  constexpr const char* kCalReasons[] = {"cold", "status",       "carve",
                                         "delta", "rows",        "drift",
                                         "cancellation", "sweep"};
  double cal_fb[8] = {};
  for (const ServiceTelemetry& svc : services) {
    sessions += static_cast<double>(svc.stats.sessions);
    reorder_hwm = std::max(reorder_hwm, static_cast<double>(svc.reorder_hwm));
    journal_lag += static_cast<double>(svc.journal_lag);
    journal_degraded += static_cast<double>(svc.journal_degraded);
    restores += static_cast<double>(svc.stats.restores);
    tick_fallbacks += static_cast<double>(svc.stats.tick_fallbacks);
    pose_ticks += static_cast<double>(svc.stats.pose_ticks);
    cal_flushes += static_cast<double>(svc.stats.cal_flushes);
    cal_memo += static_cast<double>(svc.stats.cal_memo);
    cal_incremental += static_cast<double>(svc.stats.cal_incremental);
    cal_fallbacks += static_cast<double>(svc.stats.cal_fallbacks);
    cal_fb[0] += static_cast<double>(svc.stats.cal_fb_cold);
    cal_fb[1] += static_cast<double>(svc.stats.cal_fb_status);
    cal_fb[2] += static_cast<double>(svc.stats.cal_fb_carve);
    cal_fb[3] += static_cast<double>(svc.stats.cal_fb_delta);
    cal_fb[4] += static_cast<double>(svc.stats.cal_fb_rows);
    cal_fb[5] += static_cast<double>(svc.stats.cal_fb_drift);
    cal_fb[6] += static_cast<double>(svc.stats.cal_fb_cancellation);
    cal_fb[7] += static_cast<double>(svc.stats.cal_fb_sweep);
  }
  obs::append_prometheus_sample(out, "lion_serve_live_sessions", "", sessions,
                                "gauge");
  obs::append_prometheus_sample(
      out, "lion_serve_connections", "",
      static_cast<double>(connections >= 0
                              ? connections
                              : static_cast<std::int64_t>(services.size())),
      "gauge");
  if (!shards.empty()) {
    // Per-shard ingest-queue series, from the lock-free gauge mirrors: a
    // shard wedged by a slow consumer still reports its depth here.
    const auto shard_label = [](const ShardGauges& g) {
      return "shard=\"" + std::to_string(g.shard) + "\"";
    };
    bool first = true;
    for (const ShardGauges& g : shards) {
      obs::append_prometheus_sample(out, "lion_shard_queue_depth",
                                    shard_label(g),
                                    static_cast<double>(g.queue_depth),
                                    first ? "gauge" : "");
      first = false;
    }
    first = true;
    for (const ShardGauges& g : shards) {
      obs::append_prometheus_sample(out, "lion_shard_queue_hwm",
                                    shard_label(g),
                                    static_cast<double>(g.queue_hwm),
                                    first ? "gauge" : "");
      first = false;
    }
    first = true;
    for (const ShardGauges& g : shards) {
      obs::append_prometheus_sample(out, "lion_shard_queue_stalls_total",
                                    shard_label(g),
                                    static_cast<double>(g.queue_stalls),
                                    first ? "counter" : "");
      first = false;
    }
  }
  obs::append_prometheus_sample(out, "lion_serve_reorder_depth_hwm", "",
                                reorder_hwm, "gauge");
  obs::append_prometheus_sample(out, "lion_serve_journal_lag_records", "",
                                journal_lag, "gauge");
  obs::append_prometheus_sample(out, "lion_serve_journal_degraded_sessions",
                                "", journal_degraded, "gauge");
  obs::append_prometheus_sample(out, "lion_serve_restores", "", restores,
                                "gauge");
  obs::append_prometheus_sample(
      out, "lion_serve_tick_fallback_ratio", "",
      pose_ticks == 0.0 ? 0.0 : tick_fallbacks / pose_ticks, "gauge");
  // Calibrate-flush decision split (PR 10): how many `!flush` answers the
  // incremental tier carried, and the fallback ratio the gates produced.
  obs::append_prometheus_sample(out, "lion_serve_cal_flushes_total", "",
                                cal_flushes, "counter");
  obs::append_prometheus_sample(out, "lion_serve_cal_memo_total", "",
                                cal_memo, "counter");
  obs::append_prometheus_sample(out, "lion_serve_cal_incremental_total", "",
                                cal_incremental, "counter");
  obs::append_prometheus_sample(out, "lion_serve_cal_fallbacks_total", "",
                                cal_fallbacks, "counter");
  for (std::size_t i = 0; i < 8; ++i) {
    obs::append_prometheus_sample(
        out, "lion_serve_cal_fallbacks_by_reason_total",
        std::string("reason=\"") + kCalReasons[i] + "\"", cal_fb[i],
        i == 0 ? "counter" : "");
  }
  obs::append_prometheus_sample(
      out, "lion_serve_cal_fallback_ratio", "",
      cal_flushes == 0.0 ? 0.0 : cal_fallbacks / cal_flushes, "gauge");

  // 4. Per-session RED series.
  if (!services.empty()) {
    append_session_counter(out, "lion_session_requests_total", services,
                           [](const SessionTelemetry& s) {
                             return static_cast<double>(s.requests);
                           });
    append_session_counter(out, "lion_session_errors_total", services,
                           [](const SessionTelemetry& s) {
                             return static_cast<double>(s.errors);
                           });
    append_session_counter(out, "lion_session_samples_total", services,
                           [](const SessionTelemetry& s) {
                             return static_cast<double>(s.samples);
                           });
    append_session_counter(out, "lion_session_pose_ticks_total", services,
                           [](const SessionTelemetry& s) {
                             return static_cast<double>(s.pose_ticks);
                           });
    append_session_counter(
        out, "lion_session_in_flight", services,
        [](const SessionTelemetry& s) {
          return static_cast<double>(s.in_flight);
        },
        "gauge");
    append_session_histogram(out, "lion_session_solve_seconds", services);
  }

  // 5. Event-log health: is the ops channel keeping up?
  if (events != nullptr) {
    obs::append_prometheus_sample(out, "lion_events_emitted_total", "",
                                  static_cast<double>(events->emitted()),
                                  "counter");
    obs::append_prometheus_sample(out, "lion_events_dropped_total", "",
                                  static_cast<double>(events->dropped()),
                                  "counter");
    obs::append_prometheus_sample(
        out, "lion_events_rate_limited_total", "",
        static_cast<double>(events->rate_limited()), "counter");
    const auto counts = events->severity_counts();
    out += "# TYPE lion_events_by_severity_total counter\n";
    for (std::size_t i = 0; i < counts.size(); ++i) {
      obs::append_prometheus_sample(
          out, "lion_events_by_severity_total",
          std::string("severity=\"") +
              obs::severity_name(static_cast<obs::Severity>(i)) + "\"",
          static_cast<double>(counts[i]), "");
    }
  }
  return out;
}

TelemetryServer::TelemetryServer(TelemetryConfig config)
    : cfg_(std::move(config)) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start(std::string& error) {
  if (running_.load()) {
    error = "telemetry server already running";
    return false;
  }
  // A scrape plane without a live registry would serve empty counter
  // families; starting the endpoint is the opt-in for the (observation-
  // only) metrics path, exactly like `lion_served --telemetry-port`.
  obs::set_metrics_enabled(true);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = std::string("telemetry socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    error = "telemetry: bad host '" + cfg_.host + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error = std::string("telemetry bind :") + std::to_string(cfg_.port) +
            ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 8) < 0) {
    error = std::string("telemetry listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::pipe(wake_fds_) < 0) {
    error = std::string("telemetry pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  for (const int fd : wake_fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  start_s_ = std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void TelemetryServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_fds_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TelemetryServer::serve_loop() {
  while (running_.load()) {
    pollfd pfds[2] = {};
    pfds[0].fd = listen_fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_fds_[0];
    pfds[1].events = POLLIN;
    const int ready = ::poll(pfds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents & POLLIN) break;  // stop()
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Scrapes are handled serially on this thread: one Prometheus server
    // polling every few seconds, not a request flood — and serial handling
    // means a burst of scrapes cannot amplify snapshot work.
    handle_client(fd);
    ::close(fd);
  }
}

void TelemetryServer::handle_client(int fd) {
  // Read the request head with a deadline so a stalled client cannot park
  // the serving thread. 4 KiB is plenty for "GET /metrics HTTP/1.1".
  std::string head;
  char buf[1024];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/2000);
    if (ready <= 0) return;  // timeout or error: drop silently
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
    if (head.size() > 4096) {
      send_response(fd, "400 Bad Request", "text/plain",
                    "request too large\n");
      return;
    }
  }
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string request_line = head.substr(0, eol);
  const bool is_get = request_line.rfind("GET ", 0) == 0;
  std::string path;
  if (is_get) {
    const std::size_t sp = request_line.find(' ', 4);
    path = request_line.substr(4, sp == std::string::npos ? std::string::npos
                                                          : sp - 4);
  }
  if (!is_get) {
    send_response(fd, "405 Method Not Allowed", "text/plain",
                  "only GET is supported\n");
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (path == "/metrics") {
    std::vector<ServiceTelemetry> services;
    if (cfg_.collect) services = cfg_.collect();
    std::vector<ShardGauges> shards;
    if (cfg_.shard_gauges) shards = cfg_.shard_gauges();
    const std::int64_t connections =
        cfg_.connections ? static_cast<std::int64_t>(cfg_.connections()) : -1;
    send_response(fd, "200 OK",
                  "text/plain; version=0.0.4; charset=utf-8",
                  render_metrics_body(services, cfg_.events, shards,
                                      connections));
    return;
  }
  if (path == "/healthz") {
    std::vector<ServiceTelemetry> services;
    if (cfg_.collect) services = cfg_.collect();
    std::size_t sessions = 0;
    for (const ServiceTelemetry& svc : services) {
      sessions += svc.stats.sessions;
    }
    const double uptime =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count() -
        start_s_;
    std::string body = "{\"status\":\"ok\",\"uptime_s\":";
    obs::append_json_number(body, uptime);
    body += ",\"connections\":";
    body += std::to_string(cfg_.connections
                               ? cfg_.connections()
                               : static_cast<std::uint64_t>(services.size()));
    body += ",\"sessions\":";
    body += std::to_string(sessions);
    body += "}\n";
    send_response(fd, "200 OK", "application/json", body);
    return;
  }
  send_response(fd, "404 Not Found", "text/plain",
                "try /metrics or /healthz\n");
}

}  // namespace lion::serve
