#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "linalg/small.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/process.hpp"

namespace lion::serve {

namespace {

/// Adapt a plain Sink to the origin-routing form (origins discarded).
StreamService::RoutedSink route_plain(StreamService::Sink sink) {
  if (!sink) return StreamService::RoutedSink{};
  return [sink = std::move(sink)](std::string_view line, std::uint64_t) {
    sink(line);
  };
}

}  // namespace

StreamService::StreamService(ServiceConfig config, Sink sink)
    : StreamService(std::move(config), route_plain(std::move(sink)),
                    nullptr) {}

StreamService::StreamService(ServiceConfig config, Sink sink,
                             engine::ThreadPool* pool)
    : StreamService(std::move(config), route_plain(std::move(sink)), pool) {}

StreamService::StreamService(ServiceConfig config, RoutedSink sink,
                             engine::ThreadPool* pool)
    : cfg_(std::move(config)),
      sink_(std::move(sink)),
      decoder_(cfg_.max_line_bytes),
      pool_(pool) {
  if (pool_ == nullptr) {
    std::size_t threads = cfg_.threads;
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    owned_pool_ = std::make_unique<engine::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

StreamService::~StreamService() {
  // Every scheduled solve holds a raw `this`; the pool (owned or shared)
  // must see them all finish before the service's members go away.
  drain();
  // Connection teardown without close: sync + release every journal so a
  // future connection (or process) can re-claim the sessions.
  detach_journals();
}

void StreamService::detach_journals() {
  if (cfg_.journal == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, session] : sessions_) {
    if (session.journal) {
      session.journal->sync();
      session.journal.reset();
    }
    cfg_.journal->detach(id);
  }
}

double StreamService::now() const {
  if (cfg_.clock) return cfg_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double StreamService::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_tp_)
      .count();
}

std::uint64_t StreamService::reserve_seq() { return next_seq_++; }

void StreamService::emit(std::uint64_t seq, std::string line,
                         std::uint64_t origin) {
  LION_OBS_SPAN(obs::Stage::kEmit);
  const std::uint64_t arrival = obs::trace_now_ns();
  std::lock_guard<std::mutex> lock(emit_mu_);
  emit_buffer_.emplace(seq, PendingEmit{std::move(line), arrival, origin});
  reorder_hwm_ = std::max<std::uint64_t>(reorder_hwm_, emit_buffer_.size());
  auto it = emit_buffer_.begin();
  while (it != emit_buffer_.end() && it->first == emit_next_) {
    // The reorder hold — arrival to in-order release — goes to the stage
    // histogram and the Chrome ring only: the session `!trace` ring lives
    // behind mu_, which must never be taken under emit_mu_ (lock order).
    const std::uint64_t held = arrival - it->second.arrival_ns;
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::instance().record(
          obs::stage_histogram(obs::Stage::kReorder),
          static_cast<double>(held) * 1e-9);
    }
    if (obs::tracing_enabled()) {
      obs::trace_record({obs::stage_name(obs::Stage::kReorder),
                         obs::trace_thread_id(), it->second.arrival_ns, held,
                         it->first, true});
    }
    if (sink_) sink_(it->second.line, it->second.origin);
    it = emit_buffer_.erase(it);
    ++emit_next_;
  }
}

void StreamService::emit_error(const std::string& session,
                               const std::string& code,
                               const std::string& detail, bool parse_error) {
  // Caller holds mu_ (lock order mu_ -> emit_mu_ is the designed one).
  ++stats_.errors;
  if (parse_error) ++stats_.parse_errors;
  LION_OBS_COUNT("serve.errors", 1);
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) ++it->second.request_errors;
  const std::uint64_t seq = reserve_seq();
  emit(seq, error_response(session, seq, code, detail), current_origin_);
}

const std::string& StreamService::current_of(std::uint64_t origin) const {
  static const std::string kNone;
  const auto it = currents_.find(origin);
  return it == currents_.end() ? kNone : it->second;
}

void StreamService::clear_current(const std::string& id) {
  for (auto it = currents_.begin(); it != currents_.end();) {
    if (it->second == id) {
      it = currents_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamService::record_span(StreamSession& session, std::uint64_t trace_id,
                                obs::Stage stage, std::uint64_t start_ns,
                                std::uint64_t end_ns) {
  const std::uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::instance().record(obs::stage_histogram(stage),
                                            static_cast<double>(dur) * 1e-9);
  }
  if (obs::tracing_enabled()) {
    obs::trace_record({obs::stage_name(stage), obs::trace_thread_id(),
                       start_ns, dur, trace_id, true});
  }
  // The `!trace` ring is always maintained: the dump must answer on a
  // daemon that never enabled the metrics/tracing layers.
  if (session.spans.size() < kSessionSpanCap) {
    session.spans.push_back({trace_id, stage, start_ns, dur});
  } else {
    session.spans[session.span_head] = {trace_id, stage, start_ns, dur};
    session.span_head = (session.span_head + 1) % kSessionSpanCap;
  }
}

void StreamService::event(obs::Severity severity, const char* type,
                          const std::string& session, std::string detail,
                          std::uint64_t value) {
  if (cfg_.events == nullptr) return;
  cfg_.events->emit(severity, type, session, std::move(detail), value);
}

void StreamService::ingest_bytes(std::string_view bytes) {
  std::vector<std::string> lines;
  std::size_t oversized = 0;
  {
    std::lock_guard<std::mutex> lock(decoder_mu_);
    ChunkDecoder::Lines out = decoder_.feed(bytes);
    lines = std::move(out.lines);
    oversized = out.oversized_dropped;
  }
  report_oversized(oversized);
  for (const std::string& line : lines) ingest_line(line);
}

void StreamService::report_oversized(std::size_t count) {
  report_oversized(count, 0);
}

void StreamService::report_oversized(std::size_t count, std::uint64_t origin) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  current_origin_ = origin;
  stats_.oversized += count;
  LION_OBS_COUNT("serve.oversized", count);
  for (std::size_t i = 0; i < count; ++i) {
    emit_error("", "oversized_line",
               "wire: line exceeded max_line_bytes and was dropped", false);
  }
}

void StreamService::ingest_line(std::string_view line) {
  ingest_line(line, 0);
}

void StreamService::ingest_line(std::string_view line, std::uint64_t origin) {
  LION_OBS_SPAN(obs::Stage::kIngest);
  handle_line(parse_line(line), origin);
}

void StreamService::handle_line(const ParsedLine& line, std::uint64_t origin) {
  std::unique_lock<std::mutex> lock(mu_);
  current_origin_ = origin;
  ++stats_.lines;
  ++clock_ticks_;  // the virtual clock: one tick per wire line
  ++next_trace_id_;  // trace id of this line = current_trace_id()
  LION_OBS_COUNT("serve.lines", 1);
  switch (line.kind) {
    case ParsedLine::kComment:
      break;
    case ParsedLine::kError:
      emit_error(line.session.empty() ? current_of(current_origin_)
                                      : line.session,
                 "parse_error", line.error, true);
      break;
    case ParsedLine::kSession:
      handle_session_declare(lock, line);
      break;
    case ParsedLine::kFlush:
      handle_flush(lock, line.session);
      break;
    case ParsedLine::kClose:
      handle_close(lock, line.session);
      break;
    case ParsedLine::kTick:
      clock_ticks_ += line.ticks;
      LION_OBS_COUNT("serve.ticks", line.ticks);
      break;
    case ParsedLine::kPoseTick:
      handle_pose_tick(lock, line.session);
      break;
    case ParsedLine::kStats:
      emit_stats_response();
      break;
    case ParsedLine::kHealthz:
      emit_health_response();
      break;
    case ParsedLine::kTrace:
      emit_trace_response(line.session);
      break;
    case ParsedLine::kData:
      handle_data(lock, line);
      break;
  }
  evict_idle(lock);
}

void StreamService::handle_session_declare(std::unique_lock<std::mutex>& lock,
                                           const ParsedLine& line) {
  const std::string id = line.session;
  if (sessions_.count(id) != 0) {
    emit_error(id, "bad_control", "session '" + id + "' already exists",
               false);
    return;
  }
  if (sessions_.size() >= cfg_.max_sessions) {
    emit_error(id, "session_limit",
               "session limit reached (max_sessions=" +
                   std::to_string(cfg_.max_sessions) + ")",
               false);
    return;
  }
  SessionConfig config;
  std::string error;
  if (!make_session_config(line, config, error)) {
    emit_error(id, "bad_control", error, false);
    return;
  }
  StreamSession session;
  session.id = id;
  session.config = config;
  session.last_active = clock_ticks_;
  session.owner = current_origin_;
  if (config.mode == SessionMode::kTrack) {
    // Built before any journal replay so restored samples feed it too. A
    // construction failure (degenerate geometry the declare validation
    // did not catch) leaves it null: every pose tick then falls back.
    try {
      session.incremental = std::make_unique<core::IncrementalTrackSolver>(
          incremental_config(config));
    } catch (const std::exception&) {
      session.incremental.reset();
    }
  }
  std::optional<RecoveredSession> restored;
  if (cfg_.journal != nullptr) {
    std::string code;
    std::string jerror;
    if (!attach_journal(lock, session, line, code, jerror, restored)) {
      emit_error(id, code, jerror, false);
      return;
    }
  }
  // Capture the ack payload before the move; replay filled these counters.
  const std::uint64_t records = restored ? restored->client_records : 0;
  const std::uint64_t samples = session.samples_accepted;
  const std::uint64_t flushes = session.flushes;
  const bool torn = restored && restored->torn;
  const bool was_restored = restored.has_value();
  sessions_.emplace(id, std::move(session));
  currents_[current_origin_] = id;  // fresh declares are silent on success
  if (was_restored) {
    emit_oob(restore_response(id, records, samples, flushes, torn));
  }
}

bool StreamService::attach_journal(std::unique_lock<std::mutex>& lock,
                                   StreamSession& session,
                                   const ParsedLine& line, std::string& code,
                                   std::string& error,
                                   std::optional<RecoveredSession>& restored) {
  JournalStore* store = cfg_.journal;
  const std::string norm = normalize_declare_line(line);
  std::string claim_error;
  std::optional<RecoveredSession> rec = store->claim(session.id, claim_error);
  if (!rec) {
    if (!claim_error.empty()) {
      code = "journal_conflict";
      error = claim_error;
      return false;
    }
    // No journal on disk: a fresh durable session.
    session.journal = store->open_writer(session.id, 0);
    if (!session.journal) {
      session.journal_degraded = true;
      ++stats_.journal_errors;
      LION_OBS_COUNT("serve.journal_errors", 1);
      event(obs::Severity::kError, "journal_degraded", session.id,
            "could not open journal; session is not durable");
      emit_error(session.id, "journal_error",
                 "journal: could not open journal; session '" + session.id +
                     "' is not durable",
                 false);
    } else {
      journal_append(session, JournalRecordType::kDeclare, norm);
    }
    return true;
  }
  if (rec->declare_line != norm) {
    store->detach(session.id);
    code = "journal_conflict";
    error = "journal: declare does not match journaled session '" +
            session.id + "' (journaled: " + rec->declare_line + ")";
    return false;
  }
  // Fast-forwarding next_seq_/emit_next_ below must not strand reserved
  // seqs in the reorder buffer, so wait for full quiescence first. The
  // wait releases mu_; re-check that no concurrent producer claimed the
  // id meanwhile.
  cv_.wait(lock, [this] { return outstanding_ == 0; });
  if (sessions_.count(session.id) != 0) {
    store->detach(session.id);
    code = "bad_control";
    error = "session '" + session.id + "' already exists";
    return false;
  }
  replay_records(session, *rec);
  next_seq_ = std::max(next_seq_, rec->last_seq);
  {
    // outstanding_ == 0, so the reorder buffer is empty and emit_next_
    // equals next_seq_'s pre-bump value; keep them in lockstep.
    std::lock_guard<std::mutex> emit_lock(emit_mu_);
    emit_next_ = std::max(emit_next_, next_seq_);
  }
  clock_ticks_ = std::max(clock_ticks_, rec->last_tick);
  session.last_active = clock_ticks_;
  // The ack cursor counts only client-visible records; the writer resumes
  // at the true on-disk LSN (anchors included) so frames stay gap-free.
  session.restored_records = rec->client_records;
  session.journal = store->open_writer(session.id, rec->record_count);
  if (!session.journal) {
    session.journal_degraded = true;
    ++stats_.journal_errors;
    LION_OBS_COUNT("serve.journal_errors", 1);
    event(obs::Severity::kError, "journal_degraded", session.id,
          "could not reopen journal; session is no longer durable");
    emit_error(session.id, "journal_error",
               "journal: could not reopen journal; session '" + session.id +
                   "' is no longer durable",
               false);
  }
  ++stats_.restores;
  LION_OBS_COUNT("serve.restores", 1);
  event(obs::Severity::kInfo, "restore", session.id,
        "session restored from journal", rec->record_count);
  restored = std::move(rec);
  return true;
}

void StreamService::replay_records(StreamSession& session,
                                   const RecoveredSession& rec) {
  for (const JournalRecord& record : rec.records) {
    switch (record.type) {
      case JournalRecordType::kDeclare:
        break;  // consumed by the claim (declare_line equality check)
      case JournalRecordType::kCsvRow: {
        const io::CsvStreamParser::Result row =
            session.csv.push_line(record.line);
        if (row.status == io::CsvRowStatus::kSample) {
          replay_accept(session, row.sample);
        }
        break;
      }
      case JournalRecordType::kJsonSample: {
        const ParsedLine parsed = parse_line(record.line);
        if (parsed.json_sample) replay_accept(session, *parsed.json_sample);
        break;
      }
      case JournalRecordType::kFlush:
        ++session.flushes;
        if (session.config.mode == SessionMode::kTrack) {
          // A live track flush drains the partial window as one solve.
          ++session.windows_scheduled;
          session.window_buffer.clear();
          if (session.incremental) session.incremental->clear();
        }
        break;
      case JournalRecordType::kPoseTick:
        // The response was delivered before the crash; only the tick
        // index advances, so post-restore ticks continue the sequence.
        ++session.ticks_emitted;
        break;
      case JournalRecordType::kCalFlush:
        // The report was delivered before the crash, and a calibrate
        // flush never carves the buffer — only the flush count advances.
        // Anchor state replays from kCalAnchor records alone: a memo or
        // warm decision leaves the solver untouched by contract, and a
        // fallback's install was journaled separately when it completed.
        ++session.flushes;
        break;
      case JournalRecordType::kCalAnchor: {
        if (session.config.mode != SessionMode::kCalibrate) break;
        // Re-run the batch solve the live path ran, over the recorded
        // sample-count prefix — the pipeline is deterministic, so the
        // restored anchor (digest, report bytes, per-candidate warm
        // state) is identical to the pre-crash one.
        char* end = nullptr;
        const unsigned long long n =
            std::strtoull(record.line.c_str(), &end, 10);
        if (end == record.line.c_str() || n > session.buffer.size()) break;
        ensure_cal_solver(session);
        if (!session.cal) break;
        try {
          const std::vector<sim::PhaseSample> prefix(
              session.buffer.begin(),
              session.buffer.begin() + static_cast<std::ptrdiff_t>(n));
          thread_local linalg::SolverWorkspace solver_ws;
          const core::CalibrationReport report =
              core::calibrate_antenna_robust(prefix, session.config.center,
                                             session.config.calibration,
                                             &solver_ws);
          session.cal->install_anchor(prefix, report);
        } catch (...) {
          // A solver that cannot reproduce the anchor falls back to cold
          // (every post-restore flush takes the batch path) — degraded,
          // never wrong.
          session.cal->reset();
        }
        break;
      }
    }
  }
}

void StreamService::replay_accept(StreamSession& session,
                                  const sim::PhaseSample& sample) {
  ++session.samples_accepted;
  if (session.config.mode == SessionMode::kCalibrate) {
    // Mirrors accept_sample's cap: the live path dropped this sample too.
    if (session.buffer.size() >= cfg_.max_session_samples) return;
    session.buffer.push_back(sample);
    return;
  }
  session.window_buffer.push_back(sample);
  push_incremental(session, sample);
  if (session.window_buffer.size() < session.config.window) return;
  // Carve the completed window exactly as the live path did — minus the
  // solve, whose response was already delivered before the crash.
  ++session.windows_scheduled;
  const std::size_t hop =
      std::min(session.config.hop, session.window_buffer.size());
  session.window_buffer.erase(session.window_buffer.begin(),
                              session.window_buffer.begin() + hop);
  retire_incremental(session, hop);
}

void StreamService::push_incremental(StreamSession& session,
                                     const sim::PhaseSample& sample) {
  if (!session.incremental) return;
  try {
    session.incremental->push(sample);
  } catch (...) {
    // Network-facing invariant: ingest never unwinds. A solver that threw
    // is out of sync with the window; drop it and serve ticks via the
    // full-pipeline fallback from here on.
    session.incremental.reset();
  }
}

void StreamService::retire_incremental(StreamSession& session,
                                       std::size_t count) {
  if (!session.incremental) return;
  try {
    session.incremental->retire(count);
  } catch (...) {
    session.incremental.reset();
  }
}

void StreamService::journal_append(StreamSession& session,
                                   JournalRecordType type,
                                   std::string_view line) {
  if (!session.journal || session.journal_degraded) return;
  const std::uint64_t append_start = obs::trace_now_ns();
  const bool ok =
      session.journal->append(type, line, clock_ticks_, next_seq_);
  record_span(session, current_trace_id(), obs::Stage::kJournalAppend,
              append_start, obs::trace_now_ns());
  if (ok) return;
  // Latch: one error response per session, then keep serving non-durably.
  session.journal_degraded = true;
  ++stats_.journal_errors;
  LION_OBS_COUNT("serve.journal_errors", 1);
  event(obs::Severity::kError, "journal_degraded", session.id,
        "append failed; session is no longer durable");
  emit_error(session.id, "journal_error",
             "journal: append failed; session '" + session.id +
                 "' is no longer durable",
             false);
}

void StreamService::handle_data(std::unique_lock<std::mutex>& lock,
                                const ParsedLine& line) {
  const std::uint64_t demux_start = obs::trace_now_ns();
  std::string id =
      line.session.empty() ? current_of(current_origin_) : line.session;
  if (id.empty()) {
    if (!cfg_.implicit_center) {
      emit_error("", "unknown_session",
                 "wire: data before any !session declare", false);
      return;
    }
    // Bare-pipe mode: auto-open a default calibrate session so
    // `cat scan.csv | lion serve --center ...` needs no protocol lines.
    // Routing through the declare path gives the implicit session the
    // same durability (journal attach / restore) as an explicit one.
    id = "default";
    if (sessions_.count(id) == 0) {
      ParsedLine declare;
      declare.kind = ParsedLine::kSession;
      declare.session = id;
      declare.mode = SessionMode::kCalibrate;
      declare.center = *cfg_.implicit_center;
      handle_session_declare(lock, declare);
      if (sessions_.count(id) == 0) return;  // journal conflict etc.
    }
    currents_[current_origin_] = id;
  }
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    emit_error(id, "unknown_session", "wire: no session '" + id + "'", false);
    return;
  }
  StreamSession& session = it->second;
  session.last_active = clock_ticks_;
  record_span(session, current_trace_id(), obs::Stage::kDemux, demux_start,
              obs::trace_now_ns());
  // Journal records are appended *after* the mutation (accept may consume
  // seqs for window solves — the record's seq snapshot must include them)
  // and the session is re-found because accept_sample can block on
  // backpressure and invalidate references.
  if (line.json_sample) {
    std::string canonical;
    if (cfg_.journal != nullptr) {
      canonical = canonical_sample_line(*line.json_sample);
    }
    accept_sample(lock, id, *line.json_sample);
    if (cfg_.journal != nullptr) {
      const auto again = sessions_.find(id);
      if (again != sessions_.end()) {
        journal_append(again->second, JournalRecordType::kJsonSample,
                       canonical);
      }
    }
    return;
  }
  const io::CsvStreamParser::Result row = session.csv.push_line(line.csv_row);
  switch (row.status) {
    case io::CsvRowStatus::kSample:
      accept_sample(lock, id, row.sample);
      if (cfg_.journal != nullptr) {
        const auto again = sessions_.find(id);
        if (again != sessions_.end()) {
          journal_append(again->second, JournalRecordType::kCsvRow,
                         line.csv_row);
        }
      }
      break;
    case io::CsvRowStatus::kHeader:
    case io::CsvRowStatus::kSkipped:
      // Headers/skipped rows mutate parser layout state (and line_no), so
      // they are journaled too: replay reconstructs the parser exactly.
      journal_append(session, JournalRecordType::kCsvRow, line.csv_row);
      break;
    case io::CsvRowStatus::kError:
      emit_error(id, "parse_error", row.error, true);
      journal_append(session, JournalRecordType::kCsvRow, line.csv_row);
      break;
  }
}

void StreamService::accept_sample(std::unique_lock<std::mutex>& lock,
                                  const std::string& id,
                                  const sim::PhaseSample& sample) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  StreamSession& session = it->second;
  ++session.samples_accepted;
  ++stats_.samples;
  LION_OBS_COUNT("serve.samples", 1);

  if (session.config.mode == SessionMode::kCalibrate) {
    if (session.buffer.size() >= cfg_.max_session_samples) {
      emit_error(id, "buffer_full",
                 "session buffer at max_session_samples=" +
                     std::to_string(cfg_.max_session_samples) +
                     "; sample dropped (flush or close to solve)",
                 false);
      return;
    }
    session.buffer.push_back(sample);
    return;
  }

  session.window_buffer.push_back(sample);
  push_incremental(session, sample);
  if (session.window_buffer.size() < session.config.window) return;

  // A window is complete: claim an in-flight slot (this may block and
  // invalidate `session`), then re-resolve and carve the window out.
  if (!wait_for_slot(lock, id)) {
    const auto again = sessions_.find(id);
    if (again == sessions_.end()) return;  // evicted/closed while blocked
    // Busy-reject mode: drop this window's solve but still slide, so a
    // saturated session keeps bounded memory and keeps making progress.
    StreamSession& busy = again->second;
    const std::size_t hop =
        std::min(busy.config.hop, busy.window_buffer.size());
    busy.window_buffer.erase(busy.window_buffer.begin(),
                             busy.window_buffer.begin() + hop);
    retire_incremental(busy, hop);
    emit_error(id, "busy", "track window dropped: session at in-flight cap",
               false);
    return;
  }
  const auto again = sessions_.find(id);
  if (again == sessions_.end()) return;
  StreamSession& ready = again->second;
  SolveRequest request;
  request.session = id;
  request.mode = SessionMode::kTrack;
  request.config = ready.config;
  request.samples.assign(
      ready.window_buffer.begin(),
      ready.window_buffer.begin() +
          std::min(ready.config.window, ready.window_buffer.size()));
  request.window_index = ready.windows_scheduled++;
  const std::size_t hop = std::min(ready.config.hop,
                                   ready.window_buffer.size());
  ready.window_buffer.erase(ready.window_buffer.begin(),
                            ready.window_buffer.begin() + hop);
  retire_incremental(ready, hop);
  schedule(lock, std::move(request));
}

bool StreamService::handle_flush(std::unique_lock<std::mutex>& lock,
                                 const std::string& id) {
  const std::uint64_t demux_start = obs::trace_now_ns();
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    emit_error(id, "unknown_session", "wire: no session '" + id + "'", false);
    return false;
  }
  it->second.last_active = clock_ticks_;
  ++it->second.flushes;
  record_span(it->second, current_trace_id(), obs::Stage::kDemux, demux_start,
              obs::trace_now_ns());
  if (!wait_for_slot(lock, id)) {
    if (sessions_.count(id) != 0) {
      emit_error(id, "busy", "flush rejected: session at in-flight cap",
                 false);
    }
    return false;
  }
  auto again = sessions_.find(id);
  if (again == sessions_.end()) return false;
  if (again->second.config.mode == SessionMode::kCalibrate &&
      !cfg_.reject_when_busy) {
    // Decision determinism: the anchor visible to this flush must be a
    // function of the input lines alone, and anchors are installed by
    // pool workers when a full solve completes. Waiting out the session's
    // own pending solves pins the decision; the reorder buffer already
    // queues this flush's response behind theirs, so the wait adds no
    // output latency. Reject mode trades exactly this class of timing
    // sensitivity for never blocking ingest — there the decision runs
    // against whatever anchor is installed right now.
    cv_.wait(lock, [this, &id] {
      const auto it = sessions_.find(id);
      return it == sessions_.end() || it->second.in_flight == 0;
    });
    again = sessions_.find(id);
    if (again == sessions_.end()) return false;  // evicted while blocked
  }
  StreamSession& session = again->second;
  if (session.config.mode == SessionMode::kCalibrate) {
    // The buffer is cumulative: flush solves everything seen so far and
    // keeps accepting — exactly the batch pipeline over the same rows.
    // The incremental tier (anchor-digest memo + warm-started sweep)
    // answers inline on the ingest thread when its gates hold — the
    // decision is deterministic and allocation-light, so it stays inside
    // the sequenced section like a pose tick. Any decline schedules the
    // full batch solve; its completion installs the session's next
    // anchor (and journals kCalAnchor) in run_request.
    ensure_cal_solver(session);
    core::CalFlushDecision decision;
    const std::uint64_t solve_start = obs::trace_now_ns();
    if (session.cal) decision = session.cal->flush(session.buffer);
    count_cal_decision(decision);
    if (decision.report_ready) {
      record_span(session, current_trace_id(), obs::Stage::kServeSolve,
                  solve_start, obs::trace_now_ns());
      ++stats_.reports;
      ++session.requests;
      const std::uint64_t seq = reserve_seq();
      std::string response =
          report_response(id, seq, decision.report,
                          core::cal_flush_source_name(decision.source));
      // Same durability boundary as the scheduled path: the decision is
      // journaled and fsynced before the ack leaves the service.
      journal_append(session, JournalRecordType::kCalFlush, "");
      if (session.journal && !session.journal_degraded) {
        const std::uint64_t sync_start = obs::trace_now_ns();
        session.journal->sync();
        record_span(session, current_trace_id(), obs::Stage::kJournalSync,
                    sync_start, obs::trace_now_ns());
      }
      emit(seq, std::move(response), current_origin_);
      return true;
    }
    if (!decision.detail.empty()) {
      event(obs::Severity::kInfo, "cal_fallback", id, decision.detail,
            session.buffer.size());
    }
    SolveRequest request;
    request.session = id;
    request.mode = session.config.mode;
    request.config = session.config;
    request.samples = session.buffer;
    request.cal_flush = true;
    schedule(lock, std::move(request));
    // Flush is the client's durability boundary: journal it and force the
    // batched fsync so an acked flush survives an OS crash, not just a
    // process kill.
    journal_append(session, JournalRecordType::kCalFlush, "");
    if (session.journal && !session.journal_degraded) {
      const std::uint64_t sync_start = obs::trace_now_ns();
      session.journal->sync();
      record_span(session, current_trace_id(), obs::Stage::kJournalSync,
                  sync_start, obs::trace_now_ns());
    }
    return true;
  }
  SolveRequest request;
  request.session = id;
  request.mode = session.config.mode;
  request.config = session.config;
  // Track flush drains the partial window as a final (short) solve.
  request.samples.assign(session.window_buffer.begin(),
                         session.window_buffer.end());
  session.window_buffer.clear();
  if (session.incremental) session.incremental->clear();
  request.window_index = session.windows_scheduled++;
  schedule(lock, std::move(request));
  // Flush is the client's durability boundary: journal it and force the
  // batched fsync so an acked flush survives an OS crash, not just a
  // process kill.
  journal_append(session, JournalRecordType::kFlush, "");
  if (session.journal && !session.journal_degraded) {
    const std::uint64_t sync_start = obs::trace_now_ns();
    session.journal->sync();
    record_span(session, current_trace_id(), obs::Stage::kJournalSync,
                sync_start, obs::trace_now_ns());
  }
  return true;
}

void StreamService::ensure_cal_solver(StreamSession& session) {
  if (session.cal || session.config.mode != SessionMode::kCalibrate) return;
  try {
    core::IncrementalCalConfig cal_cfg;
    cal_cfg.physical_center = session.config.center;
    cal_cfg.calibration = session.config.calibration;
    session.cal =
        std::make_unique<core::IncrementalCalibrationSolver>(cal_cfg);
  } catch (...) {
    // A session without a solver still serves: every flush takes the
    // batch path (counted as a cold fallback), nothing is silently lost.
    session.cal.reset();
  }
}

void StreamService::count_cal_decision(
    const core::CalFlushDecision& decision) {
  ++stats_.cal_flushes;
  LION_OBS_COUNT("serve.cal_flushes", 1);
  switch (decision.source) {
    case core::CalFlushSource::kMemo:
      ++stats_.cal_memo;
      LION_OBS_COUNT("serve.cal_memo", 1);
      return;
    case core::CalFlushSource::kIncremental:
      ++stats_.cal_incremental;
      LION_OBS_COUNT("serve.cal_incremental", 1);
      return;
    case core::CalFlushSource::kFallback:
      break;
  }
  ++stats_.cal_fallbacks;
  LION_OBS_COUNT("serve.cal_fallbacks", 1);
  switch (decision.reason) {
    case core::CalFallbackReason::kNone:
      break;
    case core::CalFallbackReason::kCold:
      ++stats_.cal_fb_cold;
      break;
    case core::CalFallbackReason::kStatus:
      ++stats_.cal_fb_status;
      break;
    case core::CalFallbackReason::kCarve:
      ++stats_.cal_fb_carve;
      break;
    case core::CalFallbackReason::kDelta:
      ++stats_.cal_fb_delta;
      break;
    case core::CalFallbackReason::kRows:
      ++stats_.cal_fb_rows;
      break;
    case core::CalFallbackReason::kDrift:
      ++stats_.cal_fb_drift;
      break;
    case core::CalFallbackReason::kCancellation:
      ++stats_.cal_fb_cancellation;
      break;
    case core::CalFallbackReason::kSweep:
      ++stats_.cal_fb_sweep;
      break;
  }
}

void StreamService::handle_pose_tick(std::unique_lock<std::mutex>& lock,
                                     const std::string& id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    emit_error(id, "unknown_session", "wire: no session '" + id + "'", false);
    return;
  }
  StreamSession& session = it->second;
  session.last_active = clock_ticks_;
  if (session.config.mode != SessionMode::kTrack) {
    emit_error(id, "bad_control",
               "pose tick requires a track session", false);
    return;
  }

  // Fast path: the incremental solver's maintained normal equations. The
  // residual gate (and any solver-construction failure) routes to the
  // full-pipeline window solve instead — slower, never silently wrong.
  core::TickResult tr;
  const std::uint64_t tick_start = obs::trace_now_ns();
  if (session.incremental) tr = session.incremental->tick();
  if (tr.valid && !tr.fallback) {
    record_span(session, current_trace_id(), obs::Stage::kServeSolve,
                tick_start, obs::trace_now_ns());
    ++stats_.pose_ticks;
    ++session.requests;
    LION_OBS_COUNT("serve.pose_ticks", 1);
    const std::uint64_t tick_index = session.ticks_emitted++;
    const std::uint64_t seq = reserve_seq();
    core::TrackFix fix;
    fix.t = tr.t;
    fix.start = tr.start;
    fix.position = tr.position;
    fix.sigma = tr.sigma;
    fix.mean_residual = tr.rms;
    fix.valid = true;
    emit(seq, tick_response(id, seq, tick_index, fix, tr.rows,
                            "incremental"),
         current_origin_);
    journal_append(session, JournalRecordType::kPoseTick, "");
    return;
  }

  ++stats_.tick_fallbacks;
  LION_OBS_COUNT("serve.tick_fallbacks", 1);
  event(obs::Severity::kInfo, "tick_fallback", id,
        "residual gate routed pose tick to the full window solve",
        session.ticks_emitted);
  // wait_for_slot can block and invalidate `session`; a busy rejection
  // consumes no tick index, so the client can simply retry.
  if (!wait_for_slot(lock, id)) {
    if (sessions_.count(id) != 0) {
      emit_error(id, "busy", "pose tick rejected: session at in-flight cap",
                 false);
    }
    return;
  }
  const auto again = sessions_.find(id);
  if (again == sessions_.end()) return;  // evicted/closed while blocked
  StreamSession& ready = again->second;
  SolveRequest request;
  request.session = id;
  request.mode = SessionMode::kTrack;
  request.config = ready.config;
  request.pose_tick = true;
  // The window keeps accumulating: a pose tick is a read-only probe of
  // the stream, so the buffer is copied, not carved.
  request.samples.assign(ready.window_buffer.begin(),
                         ready.window_buffer.end());
  request.window_index = ready.ticks_emitted++;
  schedule(lock, std::move(request));
  journal_append(ready, JournalRecordType::kPoseTick, "");
}

void StreamService::handle_close(std::unique_lock<std::mutex>& lock,
                                 const std::string& id) {
  if (sessions_.find(id) == sessions_.end()) {
    emit_error(id, "unknown_session", "wire: no session '" + id + "'", false);
    return;
  }
  const bool flushed = handle_flush(lock, id);  // close == final flush...
  const auto again = sessions_.find(id);
  if (again == sessions_.end()) {
    clear_current(id);
    cv_.notify_all();
    return;
  }
  if (!flushed) {
    // Busy-reject refused the terminal solve. Erasing now would silently
    // drop the accumulated buffer with no way to retry, so the session
    // stays alive; the client sees code="busy" and may retry !close.
    return;
  }
  // A completed close ends the session's durable life: the journal file
  // is deleted, so a restart re-declares from scratch.
  if (cfg_.journal != nullptr) {
    again->second.journal.reset();  // dtor syncs + closes the fd
    cfg_.journal->remove(id);
  }
  sessions_.erase(again);  // ...+ eviction, only once the flush is in flight
  clear_current(id);
  cv_.notify_all();  // wake any producer blocked on this session's slots
}

bool StreamService::wait_for_slot(std::unique_lock<std::mutex>& lock,
                                  const std::string& id) {
  for (;;) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;  // vanished while blocked
    if (it->second.in_flight < cfg_.max_inflight_per_session) return true;
    if (cfg_.reject_when_busy) {
      ++stats_.rejected_busy;
      LION_OBS_COUNT("serve.rejected_busy", 1);
      return false;
    }
    ++stats_.backpressure_waits;
    LION_OBS_COUNT("serve.backpressure_waits", 1);
    cv_.wait(lock);
  }
}

void StreamService::schedule(std::unique_lock<std::mutex>& lock,
                             SolveRequest request) {
  (void)lock;  // held: seq reservation below is what orders responses
  request.seq = reserve_seq();
  request.origin = current_origin_;
  request.enqueue_time = now();
  request.enqueue_ns = obs::trace_now_ns();
  request.trace_id = current_trace_id();
  const auto it = sessions_.find(request.session);
  if (it != sessions_.end()) {
    ++it->second.in_flight;
    ++it->second.requests;
  }
  ++outstanding_;
  // Response accounting happens here, on the ingest thread, so stats are
  // deterministic: every scheduled request emits exactly one response.
  if (request.pose_tick) {
    ++stats_.pose_ticks;
    LION_OBS_COUNT("serve.pose_ticks", 1);
  } else if (request.mode == SessionMode::kCalibrate) {
    ++stats_.reports;
  } else {
    ++stats_.fixes;
  }
  LION_OBS_COUNT("serve.requests", 1);
  LION_OBS_HIST("serve.queue_depth", obs::count_bounds(), outstanding_);
  auto shared = std::make_shared<SolveRequest>(std::move(request));
  pool_->submit([this, shared] { run_request(*shared); });
}

void StreamService::run_request(SolveRequest& request) {
  // This function is the sole emitter of its reserved seq, and the pool
  // swallows task exceptions — an escape here would wedge the reorder
  // buffer and leak the outstanding_ slot (drain()/~StreamService hang).
  // So: any throw degrades to an error response, and the accounting block
  // runs unconditionally.
  bool timed_out = false;
  bool failed = false;
  std::string response;
  // A completed calibrate flush carries its report out of the try block:
  // the accounting pass installs it as the session's next incremental
  // anchor (never on timeout — a deadline report is not the batch answer
  // for these rows and would poison the memo tier).
  core::CalibrationReport cal_report;
  bool cal_solved = false;
  const std::uint64_t solve_start = obs::trace_now_ns();
  try {
    timed_out = cfg_.request_timeout_s > 0.0 &&
                now() - request.enqueue_time > cfg_.request_timeout_s;
    if (request.mode == SessionMode::kCalibrate) {
      core::CalibrationReport report;
      if (timed_out) {
        report.status = core::CalibrationStatus::kSolverFailure;
        report.diagnostics.message =
            "serve: request exceeded its deadline before solving";
      } else {
        thread_local linalg::SolverWorkspace solver_ws;
        report = core::calibrate_antenna_robust(
            request.samples, request.config.center,
            request.config.calibration, &solver_ws);
        cal_solved = true;
      }
      response =
          report_response(request.session, request.seq, report, "fallback");
      if (cal_solved && request.cal_flush) cal_report = std::move(report);
    } else {
      core::TrackFix fix;
      if (timed_out) {
        if (!request.samples.empty()) fix.t = request.samples.back().t;
      } else {
        fix = solve_track_window(request.samples, request.config);
      }
      if (request.pose_tick) {
        // Fallback pose tick: same schema as the incremental path, with
        // source="fallback" and rows=0 (no consensus rows backed it).
        response = tick_response(request.session, request.seq,
                                 request.window_index, fix, 0, "fallback");
      } else {
        response = fix_response(request.session, request.seq,
                                request.window_index, fix);
      }
    }
  } catch (const std::exception& e) {
    failed = true;
    response = error_response(request.session, request.seq, "internal_error",
                              std::string("serve: solve failed: ") + e.what());
  } catch (...) {
    failed = true;
    response = error_response(request.session, request.seq, "internal_error",
                              "serve: solve failed: unknown exception");
  }
  const std::uint64_t solve_end = obs::trace_now_ns();
  try {
    emit(request.seq, std::move(response), request.origin);
  } catch (...) {
    // A throwing sink leaves the entry buffered; the next emit retries
    // releasing it. Swallow so the accounting below still runs.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (timed_out) {
      ++stats_.timeouts;
      LION_OBS_COUNT("serve.timeouts", 1);
    }
    if (failed) {
      ++stats_.errors;
      LION_OBS_COUNT("serve.errors", 1);
    }
    const auto it = sessions_.find(request.session);
    if (it != sessions_.end()) {
      // Telemetry for the completed request: queue wait (schedule to
      // worker pickup), the solve itself, and the session's RED series.
      StreamSession& session = it->second;
      if (request.cal_flush && cal_solved && !failed) {
        // Adopt-before-decide: the session kept accepting while this
        // solve ran, so the anchor is installed over the request's row
        // snapshot (append-only buffers make any same-or-larger later
        // anchor a superset — never regress to an older one when two
        // fallback solves complete out of order).
        ensure_cal_solver(session);
        if (session.cal &&
            (!session.cal->has_anchor() ||
             request.samples.size() > session.cal->anchor_samples())) {
          session.cal->install_anchor(request.samples, cal_report);
          journal_append(session, JournalRecordType::kCalAnchor,
                         std::to_string(request.samples.size()));
        }
      }
      record_span(session, request.trace_id, obs::Stage::kQueueWait,
                  request.enqueue_ns, solve_start);
      record_span(session, request.trace_id, obs::Stage::kServeSolve,
                  solve_start, solve_end);
      session.solve_seconds.record(static_cast<double>(solve_end -
                                                       solve_start) *
                                   1e-9);
      if (failed || timed_out) ++session.request_errors;
      if (it->second.in_flight > 0) --it->second.in_flight;
    }
    if (outstanding_ > 0) --outstanding_;
    if (cfg_.slow_request_s > 0.0 &&
        static_cast<double>(solve_end - request.enqueue_ns) * 1e-9 >
            cfg_.slow_request_s) {
      event(obs::Severity::kWarn, "slow_request", request.session,
            timed_out ? "request exceeded its deadline"
                      : "queue wait + solve exceeded slow_request_s",
            solve_end - request.enqueue_ns);
    }
  }
  cv_.notify_all();
}

void StreamService::evict_idle(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (cfg_.idle_ttl_ticks == 0) return;
  // (last_active, id) ordering makes eviction output reproducible no
  // matter how the session map hashes or when the sweep runs.
  std::vector<std::pair<std::uint64_t, std::string>> expired;
  for (const auto& [id, session] : sessions_) {
    if (clock_ticks_ - session.last_active > cfg_.idle_ttl_ticks) {
      expired.emplace_back(session.last_active, id);
    }
  }
  if (expired.empty()) return;
  std::sort(expired.begin(), expired.end());
  for (const auto& [tick, id] : expired) {
    const std::uint64_t seq = reserve_seq();
    // The eviction notice goes to the connection that owns the session,
    // which need not be the one whose line triggered the sweep.
    std::uint64_t owner = current_origin_;
    {
      const auto it = sessions_.find(id);
      if (it != sessions_.end()) owner = it->second.owner;
    }
    emit(seq, event_response(seq, "evict", id, tick), owner);
    event(obs::Severity::kInfo, "evict", id,
          "session evicted after idle_ttl_ticks", tick);
    if (cfg_.journal != nullptr) {
      const auto it = sessions_.find(id);
      if (it != sessions_.end()) it->second.journal.reset();
      cfg_.journal->remove(id);
    }
    sessions_.erase(id);
    clear_current(id);
    ++stats_.evictions;
    LION_OBS_COUNT("serve.evictions", 1);
  }
  cv_.notify_all();
}

void StreamService::emit_stats_response() {
  const std::uint64_t seq = reserve_seq();
  std::string out = "{\"schema\":\"lion.stats.v1\",\"seq\":";
  out += std::to_string(seq);
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  field("sessions", sessions_.size());
  field("lines", stats_.lines);
  field("samples", stats_.samples);
  field("parse_errors", stats_.parse_errors);
  field("reports", stats_.reports);
  field("fixes", stats_.fixes);
  field("errors", stats_.errors);
  field("evictions", stats_.evictions);
  field("backpressure_waits", stats_.backpressure_waits);
  field("rejected_busy", stats_.rejected_busy);
  field("timeouts", stats_.timeouts);
  field("oversized", stats_.oversized);
  field("pose_ticks", stats_.pose_ticks);
  field("tick_fallbacks", stats_.tick_fallbacks);
  field("cal_flushes", stats_.cal_flushes);
  field("cal_memo", stats_.cal_memo);
  field("cal_incremental", stats_.cal_incremental);
  field("cal_fallbacks", stats_.cal_fallbacks);
  field("cal_fb_cold", stats_.cal_fb_cold);
  field("cal_fb_status", stats_.cal_fb_status);
  field("cal_fb_carve", stats_.cal_fb_carve);
  field("cal_fb_delta", stats_.cal_fb_delta);
  field("cal_fb_rows", stats_.cal_fb_rows);
  field("cal_fb_drift", stats_.cal_fb_drift);
  field("cal_fb_cancellation", stats_.cal_fb_cancellation);
  field("cal_fb_sweep", stats_.cal_fb_sweep);
  field("ticks", clock_ticks_);
  if (cfg_.shard_count > 1) {
    // Sharded servers answer !stats once per shard; the annotation lets a
    // client aggregate the set (and tells it how many lines to expect).
    // Absent with one shard so the single-shard byte stream is unchanged.
    field("shard", cfg_.shard_index);
    field("shards", cfg_.shard_count);
  }
  out.push_back('}');
  emit(seq, std::move(out), current_origin_);
}

void StreamService::emit_trace_response(const std::string& id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    emit_error(id, "unknown_session", "wire: no session '" + id + "'", false);
    return;
  }
  // Unroll the ring oldest-first; the dump is out-of-band (no seq), so
  // wall-clock span values never enter the sequenced byte stream.
  const StreamSession& session = it->second;
  std::vector<SpanRecord> spans;
  spans.reserve(session.spans.size());
  for (std::size_t i = 0; i < session.spans.size(); ++i) {
    spans.push_back(
        session.spans[(session.span_head + i) % session.spans.size()]);
  }
  emit_oob(trace_response(id, spans));
}

void StreamService::emit_oob(const std::string& line) {
  // Callers hold mu_; mu_ -> emit_mu_ is the designed lock order. The
  // line carries no seq, so it slots between whatever the reorder buffer
  // has released — fine for ops-plane diagnostics.
  std::lock_guard<std::mutex> lock(emit_mu_);
  if (sink_) sink_(line, current_origin_);
}

void StreamService::emit_health_response() {
  std::string out = "{\"schema\":\"lion.health.v1\"";
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  field("sessions", sessions_.size());
  field("outstanding", outstanding_);
  field("lines", stats_.lines);
  field("samples", stats_.samples);
  field("errors", stats_.errors);
  field("restores", stats_.restores);
  field("pose_ticks", stats_.pose_ticks);
  field("tick_fallbacks", stats_.tick_fallbacks);
  field("cal_flushes", stats_.cal_flushes);
  field("cal_memo", stats_.cal_memo);
  field("cal_incremental", stats_.cal_incremental);
  field("cal_fallbacks", stats_.cal_fallbacks);
  out += ",\"journal_enabled\":";
  out += cfg_.journal != nullptr ? "true" : "false";
  if (cfg_.journal != nullptr) {
    // Journal lag: records written by this connection's sessions that are
    // not yet fsynced — the OS-crash exposure window.
    std::uint64_t lag = 0;
    std::uint64_t degraded = 0;
    for (const auto& [id, session] : sessions_) {
      if (session.journal) lag += session.journal->unsynced();
      if (session.journal_degraded) ++degraded;
    }
    const JournalStore::Stats js = cfg_.journal->stats();
    field("journal_lag", lag);
    field("journal_degraded", degraded);
    field("journal_errors", stats_.journal_errors);
    field("journal_recovered", js.scanned_sessions);
    field("journal_torn", js.torn_tails);
    field("journal_corrupt", js.corrupt_files);
    field("journal_appends", js.appends);
    field("journal_syncs", js.syncs);
    field("journal_failures", js.failures);
  }
  field("rss_bytes", obs::process_rss_bytes());
  field("open_fds", obs::process_open_fds());
  field("ticks", clock_ticks_);
  // Ops-plane extras: service age, how often the incremental tick path
  // had to fall back (a rising ratio means the residual gate is tripping
  // — the "why did my tick get slow" answer), and the deepest the reorder
  // buffer has been (how far ahead workers ran of in-order release).
  out += ",\"uptime_s\":";
  obs::append_json_number(out, uptime_s());
  const std::uint64_t all_ticks = stats_.pose_ticks;
  out += ",\"tick_fallback_ratio\":";
  obs::append_json_number(
      out, all_ticks == 0 ? 0.0
                          : static_cast<double>(stats_.tick_fallbacks) /
                                static_cast<double>(all_ticks));
  // Same story for calibrate flushes: a rising ratio means the warm
  // tier's gates are tripping and `!flush` is paying full batch cost —
  // the per-reason cal_fb_* split in `!stats` says which gate.
  out += ",\"cal_fallback_ratio\":";
  obs::append_json_number(
      out, stats_.cal_flushes == 0
               ? 0.0
               : static_cast<double>(stats_.cal_fallbacks) /
                     static_cast<double>(stats_.cal_flushes));
  {
    // mu_ -> emit_mu_ is the designed lock order, so peeking at the
    // reorder high-water mark from here is safe.
    std::lock_guard<std::mutex> emit_lock(emit_mu_);
    field("reorder_depth_hwm", reorder_hwm_);
  }
  if (cfg_.shard_count > 1) {
    // Per-shard ops view: which shard answered, and how deep its ingest
    // queue is right now / has ever been. Absent with one shard so the
    // single-shard byte stream is unchanged.
    field("shard", cfg_.shard_index);
    field("shards", cfg_.shard_count);
    field("queue_depth", cfg_.queue_depth ? cfg_.queue_depth() : 0);
    field("queue_hwm", cfg_.queue_hwm ? cfg_.queue_hwm() : 0);
    field("queue_stalls", cfg_.queue_stalls ? cfg_.queue_stalls() : 0);
  }
  out.push_back('}');
  emit_oob(out);
}

void StreamService::release_origin(std::uint64_t origin) {
  std::unique_lock<std::mutex> lock(mu_);
  // run_request emits before it decrements outstanding_, so quiescence
  // here means every sequenced response for this origin has already been
  // handed to the sink — nothing can route to the freed connection later.
  cv_.wait(lock, [this] { return outstanding_ == 0; });
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.owner != origin) {
      ++it;
      continue;
    }
    // Same contract as ~StreamService's detach: sync + release so a later
    // connection (or process) can re-claim the session. The journal file
    // is kept — EOF is teardown, not `!close`.
    if (it->second.journal) {
      it->second.journal->sync();
      it->second.journal.reset();
    }
    if (cfg_.journal != nullptr) cfg_.journal->detach(it->first);
    it = sessions_.erase(it);
  }
  currents_.erase(origin);
  cv_.notify_all();  // wake producers blocked on released sessions' slots
}

void StreamService::finish() {
  std::vector<std::string> tail;
  std::size_t oversized = 0;
  {
    std::lock_guard<std::mutex> lock(decoder_mu_);
    ChunkDecoder::Lines out = decoder_.finish();
    tail = std::move(out.lines);
    oversized = out.oversized_dropped;
  }
  report_oversized(oversized);
  for (const std::string& line : tail) ingest_line(line);
  if (cfg_.events != nullptr) {
    std::uint64_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending = outstanding_;
    }
    event(obs::Severity::kInfo, "drain", "",
          "end of stream: waiting for in-flight solves", pending);
  }
  drain();
}

void StreamService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

ServeStats StreamService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = stats_;
  out.sessions = sessions_.size();
  out.ticks = clock_ticks_;
  return out;
}

ServiceTelemetry StreamService::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceTelemetry out;
  out.stats = stats_;
  out.stats.sessions = sessions_.size();
  out.stats.ticks = clock_ticks_;
  out.uptime_s = uptime_s();
  out.shard = cfg_.shard_index;
  out.shards = cfg_.shard_count;
  out.queue_depth = cfg_.queue_depth ? cfg_.queue_depth() : 0;
  out.queue_hwm = cfg_.queue_hwm ? cfg_.queue_hwm() : 0;
  out.queue_stalls = cfg_.queue_stalls ? cfg_.queue_stalls() : 0;
  for (const auto& [id, session] : sessions_) {
    SessionTelemetry st;
    st.id = id;
    st.track = session.config.mode == SessionMode::kTrack;
    st.in_flight = session.in_flight;
    st.samples = session.samples_accepted;
    st.flushes = session.flushes;
    st.requests = session.requests;
    st.errors = session.request_errors;
    st.pose_ticks = session.ticks_emitted;
    st.solve_seconds = session.solve_seconds;
    out.sessions.push_back(std::move(st));
    if (session.journal) out.journal_lag += session.journal->unsynced();
    if (session.journal_degraded) ++out.journal_degraded;
  }
  {
    std::lock_guard<std::mutex> emit_lock(emit_mu_);
    out.reorder_hwm = reorder_hwm_;
  }
  return out;
}

}  // namespace lion::serve
