// Readiness polling for the sharded socket front-end.
//
// One abstraction, two backends:
//
//   - EpollPoller (Linux): level-triggered epoll. O(ready) wakeups, which
//     is what makes a 10k-idle-connection hold free — sleeping fds cost
//     nothing per wait() call.
//   - PollPoller (portable): poll(2) over the registered set. O(n) per
//     wait, fine for tens of fds and for platforms without epoll (macOS,
//     the BSDs — a kqueue backend would slot in here the same way, but
//     poll() is the correctness fallback CI can actually exercise).
//
// Both backends are level-triggered on purpose: the server may stop
// consuming a readable fd (shard-queue backpressure parks it), and a
// level-triggered poller re-reports the fd when interest is re-enabled —
// no edge can be lost. Only read interest is dynamic; writes go through
// blocking send() on the shard threads, so the poller never watches for
// writability.
//
// Not thread-safe: one front-end thread owns the poller. Cross-thread
// wakeups go through a registered self-pipe fd, exactly like the old
// accept loop's.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace lion::serve {

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool hangup = false;  ///< peer closed / error — treat as EOF
  };

  virtual ~Poller() = default;

  /// Register `fd` with read interest on/off. False on failure (errno
  /// preserved). Registering twice is a caller bug.
  virtual bool add(int fd, bool want_read) = 0;

  /// Flip read interest for a registered fd (backpressure parking).
  virtual bool set_read_interest(int fd, bool want_read) = 0;

  /// Deregister before close(). Safe on fds that were never added.
  virtual bool remove(int fd) = 0;

  /// Block up to timeout_ms (-1 = forever) and append ready events to
  /// `out` (cleared first). Returns the event count, 0 on timeout, -1 on
  /// a non-EINTR error.
  virtual int wait(std::vector<Event>& out, int timeout_ms) = 0;

  /// Backend name for logs/telemetry ("epoll" or "poll").
  virtual const char* name() const = 0;

  /// Build the best backend for this platform, or the portable poll()
  /// backend when `force_poll` is set (conformance tests run both).
  /// nullptr (with a reason in `error`) when the backend cannot start.
  static std::unique_ptr<Poller> create(bool force_poll, std::string& error);
};

}  // namespace lion::serve
