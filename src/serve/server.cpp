#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

namespace lion::serve {

namespace {

// Loop until the whole buffer is on the wire. Connection fds are
// non-blocking (the front-end event loop owns reads), so EAGAIN here
// means the client's receive window is full — the shard thread parks on
// writability, which is exactly the designed slow-consumer stall: a
// client that stops reading stalls the one shard its sessions live on.
// MSG_NOSIGNAL turns a vanished peer into an error return, not SIGPIPE.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLOUT;
        ::poll(&p, 1, -1);
        continue;
      }
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string_view trim_ws(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view next_token(std::string_view& rest) {
  std::size_t i = 0;
  while (i < rest.size() &&
         std::isspace(static_cast<unsigned char>(rest[i]))) {
    ++i;
  }
  std::size_t j = i;
  while (j < rest.size() &&
         !std::isspace(static_cast<unsigned char>(rest[j]))) {
    ++j;
  }
  const std::string_view token = rest.substr(i, j - i);
  rest.remove_prefix(j);
  return token;
}

// Exactly parse_control's `!tick <n>` validity: parse_count (full-consume
// strtod, non-negative, <= 1e15, integral) and nonzero. The router must
// agree with the wire parser on this, or a malformed tick would fan out
// to every shard and answer with N usage errors instead of one.
bool valid_tick_count(std::string_view token) {
  const std::string buf(token);  // short tokens: SSO, no heap
  if (buf.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (v < 0.0 || v != v || v > 1e15 ||
      v != static_cast<double>(static_cast<std::size_t>(v))) {
    return false;
  }
  return static_cast<std::size_t>(v) > 0;
}

}  // namespace

std::uint64_t run_stdio(const ServiceConfig& config, std::istream& in,
                        std::ostream& out) {
  std::uint64_t responses = 0;
  StreamService service(config, [&out, &responses](std::string_view line) {
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.put('\n');
    out.flush();
    ++responses;
  });
  char buf[4096];
  while (in.good()) {
    in.read(buf, sizeof buf);
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    service.ingest_bytes(
        std::string_view(buf, static_cast<std::size_t>(n)));
  }
  service.finish();
  return responses;
}

std::uint64_t shard_hash(std::string_view session_id) {
  // FNV-1a 64. The id -> shard mapping is part of the durability story
  // (journaled sessions must restore onto their hashed shard after a
  // restart), so this function must never change; the sharding test
  // suite pins known digests.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : session_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

SocketServer::SocketServer(ServerConfig config) : cfg_(std::move(config)) {
  if (cfg_.shards == 0) cfg_.shards = 1;
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::open_listener(std::string& error) {
  if (!cfg_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.unix_path.size() >= sizeof(addr.sun_path)) {
      error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a crashed run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      error = std::string("bind ") + cfg_.unix_path + ": " +
              std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    listener_unix_ = true;
  } else if (cfg_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (cfg_.reuseport) {
#ifdef SO_REUSEPORT
      if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one,
                       sizeof(one)) < 0) {
        error = std::string("setsockopt SO_REUSEPORT: ") +
                std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
      }
#else
      error = "SO_REUSEPORT not supported on this platform";
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
#endif
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      error = "bad tcp host '" + cfg_.tcp_host + "'";
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      error = std::string("bind :") + std::to_string(cfg_.tcp_port) + ": " +
              std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  } else {
    error = "no listener configured (set unix_path or tcp_port)";
    return false;
  }

  const int backlog = cfg_.backlog > 0 ? cfg_.backlog : 1024;
  if (::listen(listen_fd_, backlog) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (!set_nonblocking(listen_fd_)) {
    error = std::string("fcntl listener: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

bool SocketServer::start(std::string& error) {
  if (running_.load()) {
    error = "server already running";
    return false;
  }
  stop_requested_.store(false);
  abandon_.store(false);
  front_done_ = false;
  if (!open_listener(error)) return false;

  if (::pipe(wake_fds_) < 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  for (const int fd : wake_fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }

  poller_ = Poller::create(cfg_.force_poll, error);
  if (!poller_ || !poller_->add(listen_fd_, true) ||
      !poller_->add(wake_fds_[0], true)) {
    if (error.empty()) {
      error = std::string("poller register: ") + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      ::close(fd);
      fd = -1;
    }
    poller_.reset();
    return false;
  }
  error.clear();

  std::size_t threads = cfg_.service.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  pool_ = std::make_unique<engine::ThreadPool>(threads);

  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards_.clear();
    for (std::size_t k = 0; k < cfg_.shards; ++k) {
      auto shard = std::make_unique<Shard>();
      Shard* raw = shard.get();
      ServiceConfig scfg = cfg_.service;
      scfg.shard_index = k;
      scfg.shard_count = cfg_.shards;
      scfg.queue_depth = [raw] { return raw->depth.load(); };
      scfg.queue_hwm = [raw] { return raw->hwm.load(); };
      scfg.queue_stalls = [raw] { return raw->stalls.load(); };
      StreamService::RoutedSink sink = [this](std::string_view line,
                                              std::uint64_t origin) {
        std::shared_ptr<ConnWriter> writer;
        {
          std::lock_guard<std::mutex> sink_lock(sinks_mu_);
          const auto it = sinks_.find(origin);
          if (it != sinks_.end()) writer = it->second;
        }
        // Unknown origin: the stdio origin (0) or a connection already
        // torn down — release_origin() quiescence means no sequenced
        // response can land here, and late out-of-band lines are safe to
        // drop on the floor.
        if (!writer) return;
        std::string framed(line);
        framed.push_back('\n');
        std::lock_guard<std::mutex> write_lock(writer->mu);
        send_all(writer->fd, framed.data(), framed.size());
      };
      shard->service = std::make_unique<StreamService>(
          std::move(scfg), std::move(sink), pool_.get());
      shards_.push_back(std::move(shard));
    }
  }

  running_.store(true);
  for (std::size_t k = 0; k < cfg_.shards; ++k) {
    shards_[k]->thread = std::thread([this, k] { shard_loop(k); });
  }
  front_thread_ = std::thread([this] { front_loop(); });
  return true;
}

std::string SocketServer::poller_name() const {
  return poller_ ? poller_->name() : std::string();
}

void SocketServer::wake() {
  if (wake_fds_[1] < 0) return;
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

// ---------------------------------------------------------------------------
// Front-end event loop
// ---------------------------------------------------------------------------

void SocketServer::front_loop() {
  std::vector<Poller::Event> events;
  bool draining = false;
  for (;;) {
    if (abandon_.load()) break;
    if (stop_requested_.load() && !draining) {
      draining = true;
      // Stop accepting; half-close every connection so each sees EOF and
      // tears down through the normal splitter-tail + EOC path.
      if (listen_fd_ >= 0) {
        poller_->remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [fd, conn] : conns_) {
        if (!conn->eof) ::shutdown(fd, SHUT_RD);
      }
    }
    if (draining && conns_.empty()) break;
    const int n = poller_->wait(events, -1);
    if (n < 0) break;
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_fds_[0]) {
        char drain_buf[256];
        while (::read(wake_fds_[0], drain_buf, sizeof drain_buf) > 0) {
        }
        continue;
      }
      if (ev.fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;  // already torn down this round
      if (ev.readable || ev.hangup) read_ready(*it->second);
    }
    finalize_acked();
    if (parked_conns_.load() > 0) retry_parked();
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    front_done_ = true;
  }
  done_cv_.notify_all();
}

void SocketServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained this readiness level
    }
    if (stop_requested_.load() || conns_.size() >= cfg_.max_connections) {
      static const char kRefused[] =
          "{\"schema\":\"lion.error.v1\",\"session\":\"\",\"seq\":0,"
          "\"code\":\"server_full\",\"detail\":\"connection limit "
          "reached\"}\n";
      send_all(fd, kRefused, sizeof(kRefused) - 1);
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd) || !poller_->add(fd, true)) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>(cfg_.service.max_line_bytes);
    conn->fd = fd;
    conn->origin = next_origin_++;
    conn->writer = std::make_shared<ConnWriter>();
    conn->writer->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sinks_mu_);
      sinks_[conn->origin] = conn->writer;
    }
    origin_fds_[conn->origin] = fd;
    conns_.emplace(fd, std::move(conn));
    connections_served_.fetch_add(1, std::memory_order_relaxed);
    live_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::read_ready(Conn& conn) {
  if (conn.eof) return;
  char buf[65536];
  const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
  if (n > 0) {
    const ChunkDecoder::Lines lines =
        conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    route_lines(conn, lines);
    return;
  }
  if (n < 0) {
    if (errno == EINTR) return;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    // Hard error: fall through to EOF teardown. (A level-triggered
    // hangup event with no data also lands here via recv() == 0.)
  }
  on_conn_eof(conn);
}

std::size_t SocketServer::route_of(Conn& conn, std::string_view raw,
                                   bool& broadcast) {
  const std::size_t shard_count = shards_.size();
  const auto shard_of = [shard_count](std::string_view id) {
    return shard_count <= 1 ? 0 : shard_hash(id) % shard_count;
  };
  // Comments tick the owning slice's clock; malformed lines answer with
  // the current session's context. Both follow the mirror — the shard
  // that owns the mirror session is where the service-side "current
  // session" for this connection was set.
  const auto by_mirror = [&conn, &shard_of] { return shard_of(conn.mirror); };
  broadcast = false;
  const std::string_view line = trim_ws(raw);
  if (line.empty() || line.front() == '#') return by_mirror();
  if (line.front() == '{') {
    // JSON records are the one case where session extraction needs the
    // real parser (quoting, escapes, key order). Off the CSV hot path.
    const ParsedLine parsed = parse_line(line);
    if (parsed.kind == ParsedLine::kData && !parsed.session.empty()) {
      return shard_of(parsed.session);
    }
    if (parsed.kind == ParsedLine::kData && conn.mirror.empty() &&
        cfg_.service.implicit_center) {
      conn.mirror = "default";
    }
    return by_mirror();
  }
  if (line.front() == '@') {
    const std::size_t sp = line.find_first_of(" \t");
    if (sp == std::string_view::npos) return by_mirror();  // usage error
    const std::string_view id = line.substr(1, sp - 1);
    if (!valid_session_id(id)) return by_mirror();  // usage error
    return shard_of(id);
  }
  if (line.front() != '!') {
    // Bare CSV row: routes to the current session. An empty mirror with
    // implicit_center set auto-opens "default" — mirror the switch the
    // service will perform.
    if (conn.mirror.empty() && cfg_.service.implicit_center) {
      conn.mirror = "default";
    }
    return by_mirror();
  }
  // Control line. Token walk matches parse_control's classification;
  // anything it would reject as a usage error routes to the mirror shard
  // (exactly one error response).
  std::string_view rest = line;
  const std::string_view cmd = next_token(rest);
  const std::string_view arg = next_token(rest);
  const std::string_view extra = next_token(rest);
  if (cmd == "!stats" || cmd == "!healthz") {
    if (!arg.empty()) return by_mirror();  // usage error
    // Snapshot requests apply to every shard's slice; each answers for
    // its own (annotated with shard/shards when sharded).
    broadcast = true;
    return 0;
  }
  if (cmd == "!flush" || cmd == "!trace") {
    if (arg.empty() || !extra.empty() || !valid_session_id(arg)) {
      return by_mirror();  // usage error
    }
    return shard_of(arg);
  }
  if (cmd == "!close") {
    if (arg.empty() || !extra.empty() || !valid_session_id(arg)) {
      return by_mirror();  // usage error
    }
    const std::size_t target = shard_of(arg);
    if (conn.mirror == arg) conn.mirror.clear();
    return target;
  }
  if (cmd == "!tick") {
    if (arg.empty() || !extra.empty()) return by_mirror();  // usage error
    const char lead = arg.front();
    const bool numeric_lead = (lead >= '0' && lead <= '9') || lead == '-' ||
                              lead == '+' || lead == '.';
    if (numeric_lead) {
      if (!valid_tick_count(arg)) return by_mirror();  // usage error
      // A valid clock advance applies to every shard's virtual clock.
      broadcast = true;
      return 0;
    }
    if (!valid_session_id(arg)) return by_mirror();  // usage error
    return shard_of(arg);  // pose tick
  }
  if (cmd == "!session") {
    if (arg.empty() || !valid_session_id(arg)) {
      return by_mirror();  // usage error
    }
    // Optimistic mirror: the service sets its current session only on a
    // *successful* declare, but a failed declare's follow-up bare lines
    // still route somewhere deterministic — the shard that owns the
    // declared id, which is where the error context lives.
    conn.mirror = std::string(arg);
    return shard_of(arg);
  }
  return by_mirror();  // unknown control: one error on the mirror shard
}

void SocketServer::route_lines(Conn& conn, const ChunkDecoder::Lines& lines) {
  const std::size_t shard_count = shards_.size();
  if (lines.oversized_dropped > 0) {
    // Matches the single-service transport: a chunk's oversized-line
    // errors are reported before the chunk's surviving lines.
    ShardItem item;
    item.kind = ShardItem::kOversized;
    item.origin = conn.origin;
    item.count = lines.oversized_dropped;
    const std::size_t target =
        shard_count <= 1 ? 0 : shard_hash(conn.mirror) % shard_count;
    push_or_park(conn, target, std::move(item));
  }
  if (lines.lines.empty()) return;
  // One batch per target shard per chunk: lines from this connection
  // stay in arrival order within a shard (sessions map to exactly one
  // shard, so per-session order is preserved globally).
  std::vector<std::string> blobs(shard_count);
  std::vector<std::size_t> counts(shard_count, 0);
  const auto append = [&blobs, &counts](std::size_t s,
                                        const std::string& line) {
    if (counts[s] > 0) blobs[s].push_back('\n');
    blobs[s].append(line);
    ++counts[s];
  };
  for (const std::string& line : lines.lines) {
    bool broadcast = false;
    const std::size_t target = route_of(conn, line, broadcast);
    if (broadcast) {
      for (std::size_t s = 0; s < shard_count; ++s) append(s, line);
    } else {
      append(target, line);
    }
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (counts[s] == 0) continue;
    ShardItem item;
    item.kind = ShardItem::kLines;
    item.origin = conn.origin;
    item.blob = std::move(blobs[s]);
    item.count = counts[s];
    push_or_park(conn, s, std::move(item));
  }
}

bool SocketServer::try_push(std::size_t shard, ShardItem& item) {
  Shard& sh = *shards_[shard];
  std::lock_guard<std::mutex> lock(sh.mu);
  if (item.kind == ShardItem::kLines) {
    // Reject only when something is already queued: a single batch
    // larger than the whole limit must still land or it could never be
    // delivered.
    if (sh.queued_lines > 0 &&
        sh.queued_lines + item.count > cfg_.shard_queue_limit) {
      sh.stalls.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    sh.queued_lines += item.count;
    sh.depth.store(sh.queued_lines, std::memory_order_relaxed);
    std::uint64_t hwm = sh.hwm.load(std::memory_order_relaxed);
    if (sh.queued_lines > hwm) {
      sh.hwm.store(sh.queued_lines, std::memory_order_relaxed);
    }
  }
  sh.items.push_back(std::move(item));
  sh.cv.notify_one();
  return true;
}

void SocketServer::push_or_park(Conn& conn, std::size_t shard,
                                ShardItem item) {
  // Strict per-connection delivery order: once anything is parked, every
  // later batch queues behind it regardless of target shard health.
  if (conn.parked.empty()) {
    // Pre-count before the push attempt: a shard thread that drains its
    // queue concurrently checks parked_conns_ after taking the queue
    // mutex, so counting first (and decrementing on success) closes the
    // window where a park could miss its retry wakeup.
    parked_conns_.fetch_add(1, std::memory_order_relaxed);
    if (try_push(shard, item)) {
      parked_conns_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    // Backpressure: stop reading this socket; the kernel buffer and the
    // peer's TCP window absorb the stall. (After EOF there is nothing
    // left to read — the parked tail just drains on retry.)
    if (!conn.eof) poller_->set_read_interest(conn.fd, false);
  }
  conn.parked.emplace_back(shard, std::move(item));
}

void SocketServer::retry_parked() {
  for (auto& [fd, conn_ptr] : conns_) {
    Conn& conn = *conn_ptr;
    if (conn.parked.empty()) continue;
    while (!conn.parked.empty()) {
      auto& [shard, item] = conn.parked.front();
      if (!try_push(shard, item)) break;
      conn.parked.pop_front();
    }
    if (!conn.parked.empty()) continue;
    parked_conns_.fetch_sub(1, std::memory_order_relaxed);
    if (conn.eof) {
      if (!conn.eoc_sent) send_eoc(conn);
    } else {
      poller_->set_read_interest(conn.fd, true);
    }
  }
}

void SocketServer::send_eoc(Conn& conn) {
  conn.eoc_sent = true;
  conn.acks_pending = shards_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardItem eoc;
    eoc.kind = ShardItem::kEoc;
    eoc.origin = conn.origin;
    // EOC items bypass the line budget (try_push never rejects them), so
    // teardown cannot deadlock behind a full queue.
    try_push(s, eoc);
  }
}

void SocketServer::on_conn_eof(Conn& conn) {
  if (conn.eof) return;
  conn.eof = true;
  poller_->remove(conn.fd);
  const ChunkDecoder::Lines tail = conn.decoder.finish();
  route_lines(conn, tail);
  if (conn.parked.empty() && !conn.eoc_sent) send_eoc(conn);
}

void SocketServer::finalize_acked() {
  std::vector<std::uint64_t> acks;
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    acks.swap(acked_origins_);
  }
  for (const std::uint64_t origin : acks) {
    const auto fd_it = origin_fds_.find(origin);
    if (fd_it == origin_fds_.end()) continue;
    const auto it = conns_.find(fd_it->second);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    if (conn.acks_pending > 0) --conn.acks_pending;
    if (conn.acks_pending > 0) continue;
    // Every shard has released this origin: no response can route here
    // anymore, so the sink entry and the fd can go.
    {
      std::lock_guard<std::mutex> lock(sinks_mu_);
      sinks_.erase(origin);
    }
    ::shutdown(conn.fd, SHUT_RDWR);
    ::close(conn.fd);
    origin_fds_.erase(fd_it);
    conns_.erase(it);
    live_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Shard threads
// ---------------------------------------------------------------------------

void SocketServer::shard_loop(std::size_t index) {
  Shard& sh = *shards_[index];
  for (;;) {
    ShardItem item;
    {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.cv.wait(lock, [&sh] { return sh.stopped || !sh.items.empty(); });
      if (sh.items.empty()) break;  // stopped and drained
      item = std::move(sh.items.front());
      sh.items.pop_front();
      if (item.kind == ShardItem::kLines) {
        sh.queued_lines -= item.count;
        sh.depth.store(sh.queued_lines, std::memory_order_relaxed);
      }
    }
    switch (item.kind) {
      case ShardItem::kLines: {
        const std::string_view blob = item.blob;
        std::size_t start = 0;
        for (std::size_t i = 0; i < item.count; ++i) {
          const std::size_t end = (i + 1 == item.count)
                                      ? blob.size()
                                      : blob.find('\n', start);
          sh.service->ingest_line(blob.substr(start, end - start),
                                  item.origin);
          start = end + 1;
        }
        break;
      }
      case ShardItem::kOversized:
        sh.service->report_oversized(item.count, item.origin);
        break;
      case ShardItem::kEoc: {
        sh.service->release_origin(item.origin);
        {
          std::lock_guard<std::mutex> lock(ack_mu_);
          acked_origins_.push_back(item.origin);
        }
        wake();
        break;
      }
    }
    // Freed queue space: poke the front-end if anyone is parked waiting.
    if (parked_conns_.load(std::memory_order_relaxed) > 0) wake();
  }
}

// ---------------------------------------------------------------------------
// Telemetry and shutdown
// ---------------------------------------------------------------------------

std::vector<ServiceTelemetry> SocketServer::telemetry() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::vector<ServiceTelemetry> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->service) out.push_back(shard->service->telemetry());
  }
  return out;
}

std::vector<ShardGauges> SocketServer::shard_gauges() const {
  // shards_mu_ guards only the vector (held briefly in start/stop); the
  // gauges themselves are atomics, so this never waits on a shard that is
  // wedged mid-send with its service lock held.
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::vector<ShardGauges> out;
  out.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& sh = *shards_[k];
    ShardGauges g;
    g.shard = k;
    g.queue_depth = sh.depth.load(std::memory_order_relaxed);
    g.queue_hwm = sh.hwm.load(std::memory_order_relaxed);
    g.queue_stalls = sh.stalls.load(std::memory_order_relaxed);
    out.push_back(g);
  }
  return out;
}

void SocketServer::stop() { stop_with_timeout(-1.0); }

bool SocketServer::stop_with_timeout(double timeout_s) {
  const bool was_running = running_.exchange(false);
  if (!was_running) return true;
  stop_requested_.store(true);
  wake();

  // Phase 1: wait for the front-end drain — every connection half-closed,
  // its splitter tail routed, its EOC acknowledged by every shard, its fd
  // closed. The front-end exits once conns_ is empty.
  bool clean = true;
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    if (timeout_s >= 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_s));
      clean = done_cv_.wait_until(lock, deadline,
                                  [this] { return front_done_; });
    } else {
      done_cv_.wait(lock, [this] { return front_done_; });
    }
  }

  if (!clean) {
    // Deadline passed with a wedged drain (a solve stuck past the
    // timeout, or a shard blocked sending to a dead-but-unreset client).
    // Abandon: the front-end exits its loop on the flag; shard threads
    // may be unwakeable, so they are detached and everything they can
    // still touch — services, pool, writer map — is deliberately leaked.
    // The caller is expected to exit the process (lion_served _Exit()s).
    abandon_.store(true);
    wake();
    bool front_exited = false;
    {
      std::unique_lock<std::mutex> lock(done_mu_);
      front_exited = done_cv_.wait_for(lock, std::chrono::milliseconds(500),
                                       [this] { return front_done_; });
    }
    if (front_thread_.joinable()) {
      if (front_exited) {
        front_thread_.join();
      } else {
        front_thread_.detach();
      }
    }
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> shard_lock(shard->mu);
        shard->stopped = true;
      }
      shard->cv.notify_all();
      if (shard->thread.joinable()) shard->thread.detach();
      [[maybe_unused]] Shard* leaked = shard.release();
    }
    shards_.clear();
    [[maybe_unused]] engine::ThreadPool* leaked_pool = pool_.release();
    return false;
  }

  if (front_thread_.joinable()) front_thread_.join();

  // Phase 2: the queues hold no connection work anymore; stop the shard
  // threads (they drain any remaining snapshot items first) and let the
  // services wind down (drain solves, seal + detach journals).
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> shard_lock(shard->mu);
        shard->stopped = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
    shards_.clear();
  }
  pool_.reset();
  poller_.reset();
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(sinks_mu_);
    sinks_.clear();
  }
  conns_.clear();
  origin_fds_.clear();
  if (listener_unix_) ::unlink(cfg_.unix_path.c_str());
  return true;
}

}  // namespace lion::serve
