#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

namespace lion::serve {

namespace {

// Loop until the whole buffer is on the wire; MSG_NOSIGNAL turns a
// vanished peer into an error return instead of SIGPIPE.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint64_t run_stdio(const ServiceConfig& config, std::istream& in,
                        std::ostream& out) {
  std::uint64_t responses = 0;
  StreamService service(config, [&out, &responses](std::string_view line) {
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.put('\n');
    out.flush();
    ++responses;
  });
  char buf[4096];
  while (in.good()) {
    in.read(buf, sizeof buf);
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    service.ingest_bytes(
        std::string_view(buf, static_cast<std::size_t>(n)));
  }
  service.finish();
  return responses;
}

SocketServer::SocketServer(ServerConfig config) : cfg_(std::move(config)) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string& error) {
  if (running_.load()) {
    error = "server already running";
    return false;
  }
  if (!cfg_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.unix_path.size() >= sizeof(addr.sun_path)) {
      error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a crashed run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      error = std::string("bind ") + cfg_.unix_path + ": " +
              std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else if (cfg_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      error = "bad tcp host '" + cfg_.tcp_host + "'";
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      error = std::string("bind :") + std::to_string(cfg_.tcp_port) + ": " +
              std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  } else {
    error = "no listener configured (set unix_path or tcp_port)";
    return false;
  }

  if (::listen(listen_fd_, 16) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  if (::pipe(wake_fds_) < 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  for (const int fd : wake_fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }

  std::size_t threads = cfg_.service.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  pool_ = std::make_unique<engine::ThreadPool>(threads);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketServer::wake() {
  if (wake_fds_[1] < 0) return;
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void SocketServer::accept_loop() {
  while (running_.load()) {
    // Block on (listener, self-pipe): finished connections write a byte,
    // so they are reaped the moment they exit — no timer poll, and a
    // quiet server does not retain closed connections' fds and un-joined
    // threads (or count them against max_connections) until the next
    // accept or stop().
    pollfd pfds[2] = {};
    pfds[0].fd = listen_fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_fds_[0];
    pfds[1].events = POLLIN;
    const int ready = ::poll(pfds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof drain) > 0) {
      }
      std::lock_guard<std::mutex> lock(mu_);
      reap_finished_locked();
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    reap_finished_locked();
    if (!running_.load() || connections_.size() >= cfg_.max_connections) {
      static const char kRefused[] =
          "{\"schema\":\"lion.error.v1\",\"session\":\"\",\"seq\":0,"
          "\"code\":\"server_full\",\"detail\":\"connection limit "
          "reached\"}\n";
      send_all(fd, kRefused, sizeof(kRefused) - 1);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(*raw); });
    connections_.push_back(std::move(conn));
    connections_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::serve_connection(Connection& conn) {
  const int fd = conn.fd;
  {
    StreamService service(
        cfg_.service,
        [fd](std::string_view line) {
          std::string framed(line);
          framed.push_back('\n');
          send_all(fd, framed.data(), framed.size());
        },
        pool_.get());
    // Publish the stack-owned service for telemetry walks; unpublished
    // (under the same mutex) before it is destroyed below.
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn.service = &service;
    }
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, error, or stop() shutting the socket down
      service.ingest_bytes(
          std::string_view(buf, static_cast<std::size_t>(n)));
    }
    service.finish();  // flush trailing line + drain before the fd closes
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn.service = nullptr;
    }
  }
  // Signal EOF to the peer but leave close() to whoever joins this
  // thread — stop() may still hold our fd number, and closing here would
  // let the kernel recycle it under stop()'s shutdown() call.
  ::shutdown(fd, SHUT_RDWR);
  {
    // The empty critical section orders done=true against a concurrent
    // stop_with_timeout() passing its wait predicate check.
    std::lock_guard<std::mutex> lock(mu_);
    conn.done.store(true);
  }
  drain_cv_.notify_all();
  wake();  // let the accept loop reap us now
}

std::vector<ServiceTelemetry> SocketServer::telemetry() const {
  // Holding mu_ across the per-service snapshots pins every published
  // pointer (handlers unpublish under mu_ before destruction). Each
  // snapshot takes that service's own mutex; services never take the
  // server's, so the order here cannot deadlock.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServiceTelemetry> out;
  out.reserve(connections_.size());
  for (const auto& conn : connections_) {
    if (conn->service != nullptr) out.push_back(conn->service->telemetry());
  }
  return out;
}

void SocketServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::stop() { stop_with_timeout(-1.0); }

bool SocketServer::stop_with_timeout(double timeout_s) {
  const bool was_running = running_.exchange(false);
  wake();  // the accept loop re-checks running_ and exits
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
  }
  // Half-close every connection up front: each handler's recv returns 0,
  // it finish()es (drains its in-flight solves, flushes responses, seals
  // its journals), then flags done. The deadline below bounds the wait,
  // not the kick.
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
  const bool bounded = timeout_s >= 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? timeout_s : 0.0));
  bool clean = true;
  for (auto& conn : conns) {
    if (bounded) {
      std::unique_lock<std::mutex> lock(mu_);
      const bool finished = drain_cv_.wait_until(
          lock, deadline, [&conn] { return conn->done.load(); });
      if (!finished) {
        // Straggler: a handler wedged mid-solve past the deadline. Detach
        // the thread and leak its Connection (still referenced by the
        // detached thread) and fd — the caller exits the process.
        clean = false;
        lock.unlock();
        conn->thread.detach();
        conn.release();
        continue;
      }
    }
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  if (was_running && !cfg_.unix_path.empty()) {
    ::unlink(cfg_.unix_path.c_str());
  }
  for (const int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
  wake_fds_[0] = wake_fds_[1] = -1;
  if (clean) {
    pool_.reset();
  } else {
    // Detached handlers still schedule on the pool; destroying it would
    // block (or race). Leak it — unclean drain ends in process exit.
    [[maybe_unused]] engine::ThreadPool* leaked = pool_.release();
  }
  return clean;
}

}  // namespace lion::serve
