#include "serve/wire.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace lion::serve {

namespace {

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// strtod with required full consumption; never throws, rejects empty.
bool parse_number(std::string_view token, double& out) {
  const std::string buf(trim_view(token));
  if (buf.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_count(std::string_view token, std::size_t& out) {
  double v = 0.0;
  if (!parse_number(token, v)) return false;
  if (v < 0.0 || v != v || v > 1e15 ||
      v != static_cast<double>(static_cast<std::size_t>(v))) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_vec3(std::string_view token, Vec3& out) {
  // "x,y,z" — three comma-separated numbers, no spare fields.
  std::size_t start = 0;
  int part = 0;
  for (std::size_t i = 0; i <= token.size(); ++i) {
    if (i == token.size() || token[i] == ',') {
      if (part >= 3) return false;
      double v = 0.0;
      if (!parse_number(token.substr(start, i - start), v)) return false;
      out[part++] = v;
      start = i + 1;
    }
  }
  return part == 3;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < s.size() &&
           !std::isspace(static_cast<unsigned char>(s[j]))) {
      ++j;
    }
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

ParsedLine error_line(std::string detail) {
  ParsedLine out;
  out.kind = ParsedLine::kError;
  out.error = std::move(detail);
  return out;
}

ParsedLine parse_control(std::string_view line) {
  const auto tokens = split_ws(line);
  // tokens[0] is the command including '!'.
  const std::string_view cmd = tokens[0];
  ParsedLine out;

  auto require_id = [&](std::size_t count) -> bool {
    if (tokens.size() != count) return false;
    if (!valid_session_id(tokens[1])) return false;
    out.session = std::string(tokens[1]);
    return true;
  };

  if (cmd == "!flush") {
    out.kind = ParsedLine::kFlush;
    if (!require_id(2)) return error_line("wire: usage: !flush <id>");
    return out;
  }
  if (cmd == "!close") {
    out.kind = ParsedLine::kClose;
    if (!require_id(2)) return error_line("wire: usage: !close <id>");
    return out;
  }
  if (cmd == "!stats") {
    out.kind = ParsedLine::kStats;
    if (tokens.size() != 1) return error_line("wire: usage: !stats");
    return out;
  }
  if (cmd == "!healthz") {
    out.kind = ParsedLine::kHealthz;
    if (tokens.size() != 1) return error_line("wire: usage: !healthz");
    return out;
  }
  if (cmd == "!trace") {
    out.kind = ParsedLine::kTrace;
    if (!require_id(2)) return error_line("wire: usage: !trace <id>");
    return out;
  }
  if (cmd == "!tick") {
    if (tokens.size() != 2) {
      return error_line("wire: usage: !tick <n>|<session-id>");
    }
    // Disambiguate on the first character: numeric-looking arguments are
    // clock advances (and must parse as a positive count), anything else
    // is a pose-tick session id. Ids that *start* with a digit, sign, or
    // '.' are therefore not pose-tickable — documented wire limitation.
    const char lead = tokens[1].front();
    const bool numeric_lead =
        (lead >= '0' && lead <= '9') || lead == '-' || lead == '+' ||
        lead == '.';
    if (numeric_lead) {
      out.kind = ParsedLine::kTick;
      std::size_t n = 0;
      if (!parse_count(tokens[1], n) || n == 0) {
        return error_line("wire: usage: !tick <n>");
      }
      out.ticks = n;
      return out;
    }
    out.kind = ParsedLine::kPoseTick;
    if (!valid_session_id(tokens[1])) {
      return error_line("wire: usage: !tick <n>|<session-id>");
    }
    out.session = std::string(tokens[1]);
    return out;
  }
  if (cmd == "!session") {
    out.kind = ParsedLine::kSession;
    if (tokens.size() < 2 || !valid_session_id(tokens[1])) {
      return error_line(
          "wire: usage: !session <id> [mode=...] [center=x,y,z] ...");
    }
    out.session = std::string(tokens[1]);
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::string_view kv = tokens[i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return error_line("wire: bad session option '" + std::string(kv) +
                          "' (want key=value)");
      }
      const std::string_view key = kv.substr(0, eq);
      const std::string_view val = kv.substr(eq + 1);
      bool ok = true;
      if (key == "mode") {
        if (val == "calibrate") {
          out.mode = SessionMode::kCalibrate;
        } else if (val == "track") {
          out.mode = SessionMode::kTrack;
        } else {
          ok = false;
        }
      } else if (key == "center") {
        Vec3 v;
        ok = parse_vec3(val, v);
        if (ok) out.center = v;
      } else if (key == "dir") {
        Vec3 v;
        ok = parse_vec3(val, v);
        if (ok) out.direction = v;
      } else if (key == "hint") {
        Vec3 v;
        ok = parse_vec3(val, v);
        if (ok) out.hint = v;
      } else if (key == "speed") {
        double v = 0.0;
        ok = parse_number(val, v) && v > 0.0;
        if (ok) out.speed = v;
      } else if (key == "wavelength") {
        double v = 0.0;
        ok = parse_number(val, v) && v > 0.0;
        if (ok) out.wavelength = v;
      } else if (key == "window") {
        std::size_t v = 0;
        ok = parse_count(val, v);
        if (ok) out.window = v;
      } else if (key == "hop") {
        std::size_t v = 0;
        ok = parse_count(val, v);
        if (ok) out.hop = v;
      } else if (key == "dim") {
        std::size_t v = 0;
        ok = parse_count(val, v) && (v == 2 || v == 3);
        if (ok) out.dim = v;
      } else if (key == "smoothing") {
        std::size_t v = 0;
        ok = parse_count(val, v);
        if (ok) out.smoothing = v;
      } else {
        return error_line("wire: unknown session option '" +
                          std::string(key) + "'");
      }
      if (!ok) {
        return error_line("wire: bad value for session option '" +
                          std::string(key) + "'");
      }
    }
    return out;
  }
  return error_line("wire: unknown control '" + std::string(cmd) + "'");
}

// Flat JSON object decoder for one read record. Accepts exactly one level
// of {"key":value} pairs; values are numbers, or a string for "session".
// Anything nested, duplicated-with-disagreement, or unknown is an error —
// this is a network-facing parser, strictness is the feature.
ParsedLine parse_json_record(std::string_view line) {
  struct Cursor {
    std::string_view s;
    std::size_t i = 0;
    void skip_ws() {
      while (i < s.size() &&
             std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
    }
    bool eat(char c) {
      skip_ws();
      if (i < s.size() && s[i] == c) {
        ++i;
        return true;
      }
      return false;
    }
    bool done() {
      skip_ws();
      return i == s.size();
    }
  };
  Cursor cur{line};

  auto parse_string = [&](std::string& out) -> bool {
    cur.skip_ws();
    if (!cur.eat('"')) return false;
    out.clear();
    while (cur.i < cur.s.size()) {
      const char c = cur.s[cur.i++];
      if (c == '"') return true;
      if (c == '\\') {
        if (cur.i >= cur.s.size()) return false;
        const char esc = cur.s[cur.i++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return false;  // \uXXXX etc. not needed for ids
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  };

  auto parse_value_number = [&](double& out) -> bool {
    cur.skip_ws();
    const std::size_t start = cur.i;
    while (cur.i < cur.s.size() && cur.s[cur.i] != ',' &&
           cur.s[cur.i] != '}') {
      ++cur.i;
    }
    return parse_number(cur.s.substr(start, cur.i - start), out);
  };

  if (!cur.eat('{')) return error_line("wire: json record must be an object");

  ParsedLine out;
  out.kind = ParsedLine::kData;
  sim::PhaseSample sample;
  bool has_x = false, has_y = false, has_z = false, has_phase = false;

  if (!cur.eat('}')) {
    while (true) {
      std::string key;
      if (!parse_string(key)) {
        return error_line("wire: json record: expected string key");
      }
      if (!cur.eat(':')) {
        return error_line("wire: json record: expected ':' after key");
      }
      if (key == "session") {
        std::string id;
        if (!parse_string(id) || !valid_session_id(id)) {
          return error_line("wire: json record: bad session id");
        }
        out.session = std::move(id);
      } else {
        double v = 0.0;
        if (!parse_value_number(v)) {
          return error_line("wire: json record: bad number for '" + key +
                            "'");
        }
        if (key == "x") {
          sample.position[0] = v;
          has_x = true;
        } else if (key == "y") {
          sample.position[1] = v;
          has_y = true;
        } else if (key == "z") {
          sample.position[2] = v;
          has_z = true;
        } else if (key == "phase") {
          sample.phase = v;
          has_phase = true;
        } else if (key == "rssi") {
          sample.rssi_dbm = v;
        } else if (key == "channel") {
          if (v < 0.0 || v != v) {
            return error_line("wire: json record: bad channel");
          }
          sample.channel = static_cast<std::uint32_t>(v);
        } else if (key == "t") {
          sample.t = v;
        } else {
          return error_line("wire: json record: unknown key '" + key + "'");
        }
      }
      if (cur.eat(',')) continue;
      if (cur.eat('}')) break;
      return error_line("wire: json record: expected ',' or '}'");
    }
  }
  if (!cur.done()) {
    return error_line("wire: json record: trailing bytes after '}'");
  }
  if (!(has_x && has_y && has_z && has_phase)) {
    return error_line("wire: json record: x, y, z and phase are required");
  }
  out.json_sample = sample;
  return out;
}

}  // namespace

bool valid_session_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_' || c == '.' || c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

ChunkDecoder::Lines ChunkDecoder::feed(std::string_view bytes) {
  Lines out;
  for (const char c : bytes) {
    if (c == '\n') {
      if (discarding_) {
        ++out.oversized_dropped;
        discarding_ = false;
      } else {
        if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
        out.lines.push_back(std::move(partial_));
      }
      partial_.clear();
      continue;
    }
    if (discarding_) continue;
    if (partial_.size() >= max_line_) {
      partial_.clear();
      discarding_ = true;
      continue;
    }
    partial_.push_back(c);
  }
  return out;
}

ChunkDecoder::Lines ChunkDecoder::finish() {
  Lines out;
  if (discarding_) {
    ++out.oversized_dropped;
    discarding_ = false;
  } else if (!partial_.empty()) {
    if (partial_.back() == '\r') partial_.pop_back();
    if (!partial_.empty()) out.lines.push_back(std::move(partial_));
  }
  partial_.clear();
  return out;
}

ParsedLine parse_line(std::string_view line) {
  const std::string_view stripped = trim_view(line);
  if (stripped.empty() || stripped[0] == '#') {
    return ParsedLine{};  // kComment
  }
  if (stripped[0] == '!') return parse_control(stripped);
  if (stripped[0] == '{') return parse_json_record(stripped);

  ParsedLine out;
  out.kind = ParsedLine::kData;
  if (stripped[0] == '@') {
    const std::size_t sp = stripped.find_first_of(" \t");
    if (sp == std::string_view::npos) {
      return error_line("wire: usage: @<id> <csv-row>");
    }
    const std::string_view id = stripped.substr(1, sp - 1);
    if (!valid_session_id(id)) {
      return error_line("wire: bad session id in '@' route");
    }
    out.session = std::string(id);
    out.csv_row = std::string(stripped.substr(sp + 1));
    return out;
  }
  out.csv_row = std::string(stripped);
  return out;
}

}  // namespace lion::serve
