#include "signal/stitch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/obs.hpp"
#include "rf/constants.hpp"
#include "signal/smooth.hpp"
#include "signal/unwrap.hpp"

namespace lion::signal {

using rf::kTwoPi;

PhaseProfile stitch_continuous(const std::vector<PhaseProfile>& parts) {
  LION_OBS_SPAN(obs::Stage::kStitch);
  PhaseProfile all;
  for (const auto& p : parts) {
    all.insert(all.end(), p.begin(), p.end());
  }
  unwrap_in_place(all);
  return all;
}

PhaseProfile stitch_profiles(const std::vector<PhaseProfile>& parts,
                             double max_junction_gap) {
  LION_OBS_SPAN(obs::Stage::kStitch);
  PhaseProfile out;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    if (out.empty()) {
      out = part;
      continue;
    }
    const ProfilePoint& tail = out.back();
    const ProfilePoint& head = part.front();
    const double gap = linalg::distance(tail.position, head.position);
    if (gap > max_junction_gap) {
      throw std::invalid_argument(
          "stitch_profiles: junction endpoints farther apart than the "
          "unambiguous half-wavelength gap");
    }
    // Junction endpoints are close, so their true phases are close too;
    // shift the whole incoming profile by the 2*pi multiple that makes the
    // junction jump smallest.
    const double jump = head.phase - tail.phase;
    const double shift = -std::round(jump / kTwoPi) * kTwoPi;
    for (const ProfilePoint& p : part) {
      out.push_back({p.position, p.phase + shift, p.t});
    }
  }
  return out;
}

PhaseProfile preprocess(const std::vector<sim::PhaseSample>& samples,
                        const PreprocessConfig& config) {
  SanitizeReport ignored;
  return preprocess(samples, config, ignored);
}

PhaseProfile preprocess(const std::vector<sim::PhaseSample>& samples,
                        const PreprocessConfig& config,
                        SanitizeReport& sanitize_report) {
  LION_OBS_SPAN(obs::Stage::kPreprocess);
  std::vector<sim::PhaseSample> cleaned = samples;
  sanitize_report = SanitizeReport{};
  sanitize_report.input = sanitize_report.kept = cleaned.size();
  if (config.sanitize) {
    cleaned = sanitize_samples(std::move(cleaned), &sanitize_report);
  }
  if (config.rssi_gate_db > 0.0) {
    reject_low_rssi(cleaned, config.rssi_gate_db);
  }
  if (config.impulse_threshold > 0.0) {
    reject_wrapped_impulses(cleaned, config.impulse_threshold);
  }
  PhaseProfile profile = unwrap_samples(cleaned);
  if (config.outlier_threshold > 0.0) {
    reject_outliers(profile, config.outlier_window, config.outlier_threshold);
  }
  std::size_t window = config.smoothing_window;
  if (config.smoothing_window_m > 0.0 && profile.size() > 2) {
    const auto arcs = arc_lengths(profile);
    const double spacing =
        arcs.back() / static_cast<double>(profile.size() - 1);
    if (spacing > 0.0) {
      window = static_cast<std::size_t>(config.smoothing_window_m / spacing);
    }
  }
  if (window > 1) {
    smooth_in_place(profile, window);
  }
  return profile;
}

std::vector<std::uint32_t> channels_present(
    const std::vector<sim::PhaseSample>& samples) {
  std::vector<std::uint32_t> out;
  for (const auto& s : samples) {
    if (std::find(out.begin(), out.end(), s.channel) == out.end()) {
      out.push_back(s.channel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<sim::PhaseSample> select_channel(
    const std::vector<sim::PhaseSample>& samples, std::uint32_t channel) {
  std::vector<sim::PhaseSample> out;
  for (const auto& s : samples) {
    if (s.channel == channel) out.push_back(s);
  }
  return out;
}

}  // namespace lion::signal
