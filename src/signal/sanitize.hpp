// Input sanitization: the first line of defence between a raw reader
// stream and the preprocessing pipeline.
//
// Real streams contain decode garbage (NaN fields, absurd phases), LLRP
// event reordering (non-monotonic timestamps, duplicate deliveries), and
// out-of-range wrapped phases. Every downstream stage — unwrap, pairing,
// the linear solve — silently amplifies such samples into wild estimates,
// so they are scrubbed here, with an itemized report of what was done.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/reader.hpp"

namespace lion::signal {

/// What sanitize_samples did to a stream.
struct SanitizeReport {
  std::size_t input = 0;                ///< samples in
  std::size_t kept = 0;                 ///< samples out
  std::size_t dropped_nonfinite = 0;    ///< NaN/inf phase, position, or time
  std::size_t dropped_duplicate = 0;    ///< repeated (timestamp, position)
  std::size_t reordered = 0;            ///< monotonicity violations fixed
  std::size_t rewrapped = 0;            ///< phases folded back into [0, 2*pi)

  /// True when the stream needed no repair at all.
  bool clean() const {
    return dropped_nonfinite == 0 && dropped_duplicate == 0 &&
           reordered == 0 && rewrapped == 0;
  }
};

/// Scrub a raw sample stream:
///  1. drop samples with non-finite timestamp, phase, RSSI or position;
///  2. re-wrap finite phases that left [0, 2*pi);
///  3. restore chronological order (stable sort by timestamp);
///  4. drop exact duplicate deliveries (same timestamp and position).
/// Never throws; an empty or all-garbage stream simply comes back empty.
std::vector<sim::PhaseSample> sanitize_samples(
    std::vector<sim::PhaseSample> samples, SanitizeReport* report = nullptr);

}  // namespace lion::signal
