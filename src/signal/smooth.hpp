// Phase-profile smoothing (Sec. IV-A2): a moving-average filter knocks down
// white measurement noise on the unwrapped profile; a median filter is
// offered as a robust alternative for impulsive outliers.
#pragma once

#include <cstddef>
#include <vector>

#include "signal/profile.hpp"

namespace lion::signal {

/// Centered moving average with the given odd window (even windows are
/// rounded up). Edges use the available shrunken window. window <= 1 is a
/// no-op copy.
std::vector<double> moving_average(const std::vector<double>& values,
                                   std::size_t window);

/// Centered moving median, same windowing rules as moving_average.
std::vector<double> moving_median(const std::vector<double>& values,
                                  std::size_t window);

/// Smooth a profile's phases in place with a moving average.
void smooth_in_place(PhaseProfile& profile, std::size_t window);

/// Remove points whose phase deviates from the local median by more than
/// `threshold` radians (impulse rejection). Returns the number removed.
std::size_t reject_outliers(PhaseProfile& profile, std::size_t window,
                            double threshold);

/// Remove impulsive corruption from a *wrapped* sample stream before
/// unwrapping. A single wild read (collision, decode error) would derail
/// the unwrap accumulator by a multiple of 2*pi, shifting everything after
/// it; this filter drops samples whose circular jump from the last accepted
/// sample exceeds `threshold` radians — unless the *next* sample agrees
/// with them (look-ahead confirmation), which heals a corrupted first
/// sample. Returns the number of samples removed.
std::size_t reject_wrapped_impulses(std::vector<sim::PhaseSample>& samples,
                                    double threshold);

/// Drop reads whose RSSI is more than `below_median_db` under the stream's
/// median RSSI. In a fading channel the phase is wildest exactly when the
/// resultant field is in a deep fade — which is also when RSSI collapses —
/// so gating on RSSI removes the heavy-tailed phase outliers before they
/// reach the unwrapper. Returns the number of samples removed.
std::size_t reject_low_rssi(std::vector<sim::PhaseSample>& samples,
                            double below_median_db);

}  // namespace lion::signal
