// Cross-trajectory profile stitching and the preprocessing pipeline
// (Sec. IV-A + IV-B).
//
// When the calibration scan is driven as separate line sweeps, each sweep's
// unwrapped profile carries its own arbitrary 2*pi*k baseline; phase
// *differences across sweeps* are then meaningless. The paper's remedy is
// to keep the stream continuous (drive the tag from the end of one line to
// the start of the next) — `stitch_continuous` implements exactly that by
// unwrapping across the junction. `stitch_profiles` additionally handles
// separately-recorded sweeps whose junction endpoints are physically close.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "signal/profile.hpp"
#include "signal/sanitize.hpp"

namespace lion::signal {

/// Concatenate profiles recorded as one continuous movement: phases are
/// re-unwrapped across each junction so the result is a single continuous
/// profile. Empty inputs are skipped.
PhaseProfile stitch_continuous(const std::vector<PhaseProfile>& parts);

/// Stitch separately-recorded sweeps: each subsequent profile is shifted by
/// the multiple of 2*pi that minimizes the phase jump across the junction.
/// Requires junction endpoints to be within `max_junction_gap` metres
/// (default half wavelength ~0.16 m) — otherwise the 2*pi*k ambiguity
/// cannot be resolved and std::invalid_argument is thrown.
PhaseProfile stitch_profiles(const std::vector<PhaseProfile>& parts,
                             double max_junction_gap = 0.16);

/// Preprocessing configuration (sanitize -> impulse rejection -> unwrap ->
/// outlier rejection -> smoothing).
struct PreprocessConfig {
  /// Scrub non-finite / disordered / duplicate reads before anything else
  /// (signal::sanitize_samples). A clean stream passes through untouched.
  bool sanitize = true;
  /// Pre-unwrap circular jump threshold [rad] dropping impulsive reads
  /// before they can derail the unwrap accumulator; <=0 disables. The
  /// default is far above legitimate sample-to-sample motion (<0.1 rad at
  /// 100 Hz and 10 cm/s) yet well below a 2*pi-scale impulse.
  double impulse_threshold = 1.2;
  /// RSSI gate: drop reads more than this many dB under the stream's
  /// median RSSI (deep fades carry wild phases); <=0 disables.
  double rssi_gate_db = 0.0;
  std::size_t smoothing_window = 9;   ///< moving-average window; <=1 disables
  /// Metric smoothing window [m of trajectory]: when > 0 it overrides
  /// `smoothing_window`, sizing the moving average from the stream's
  /// median sample spacing. A reader at 120 Hz and 10 cm/s spaces samples
  /// ~0.8 mm apart, so a fixed 9-sample window smooths almost nothing;
  /// a metric window adapts to the actual density.
  double smoothing_window_m = 0.0;
  std::size_t outlier_window = 11;    ///< median window for impulse rejection
  double outlier_threshold = 0.0;     ///< radians; <=0 disables rejection
};

/// Run the full Sec. IV-A pipeline on raw reader samples.
PhaseProfile preprocess(const std::vector<sim::PhaseSample>& samples,
                        const PreprocessConfig& config = {});

/// Same pipeline, additionally reporting what sanitization repaired.
PhaseProfile preprocess(const std::vector<sim::PhaseSample>& samples,
                        const PreprocessConfig& config,
                        SanitizeReport& sanitize_report);

/// Channel indices present in a (possibly frequency-hopped) stream,
/// ascending.
std::vector<std::uint32_t> channels_present(
    const std::vector<sim::PhaseSample>& samples);

/// Keep only the reads taken on one carrier channel. A hopped stream mixes
/// wavelengths, so its phases cannot be unwrapped as one sequence — each
/// channel must be preprocessed (and localized, with that channel's
/// wavelength) on its own.
std::vector<sim::PhaseSample> select_channel(
    const std::vector<sim::PhaseSample>& samples, std::uint32_t channel);

}  // namespace lion::signal
