#include "signal/smooth.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "rf/phase_model.hpp"

namespace lion::signal {

namespace {

// Clamp a window to odd and compute the half width.
std::size_t half_width(std::size_t window) {
  if (window <= 1) return 0;
  if (window % 2 == 0) ++window;
  return window / 2;
}

}  // namespace

std::vector<double> moving_average(const std::vector<double>& values,
                                   std::size_t window) {
  const std::size_t h = half_width(window);
  if (h == 0) return values;
  std::vector<double> out(values.size());
  // Prefix sums keep this O(n) regardless of window size.
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t lo = i >= h ? i - h : 0;
    const std::size_t hi = std::min(i + h, values.size() - 1);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> moving_median(const std::vector<double>& values,
                                  std::size_t window) {
  const std::size_t h = half_width(window);
  if (h == 0) return values;
  std::vector<double> out(values.size());
  std::vector<double> buf;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t lo = i >= h ? i - h : 0;
    const std::size_t hi = std::min(i + h, values.size() - 1);
    buf.assign(values.begin() + static_cast<std::ptrdiff_t>(lo),
               values.begin() + static_cast<std::ptrdiff_t>(hi + 1));
    const std::size_t mid = buf.size() / 2;
    std::nth_element(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(mid),
                     buf.end());
    if (buf.size() % 2 == 1) {
      out[i] = buf[mid];
    } else {
      const double hi_v = buf[mid];
      const double lo_v = *std::max_element(
          buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(mid));
      out[i] = 0.5 * (lo_v + hi_v);
    }
  }
  return out;
}

void smooth_in_place(PhaseProfile& profile, std::size_t window) {
  LION_OBS_SPAN(obs::Stage::kSmooth);
  std::vector<double> phases(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) phases[i] = profile[i].phase;
  phases = moving_average(phases, window);
  for (std::size_t i = 0; i < profile.size(); ++i) profile[i].phase = phases[i];
}

std::size_t reject_outliers(PhaseProfile& profile, std::size_t window,
                            double threshold) {
  if (profile.empty()) return 0;
  std::vector<double> phases(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) phases[i] = profile[i].phase;
  const auto med = moving_median(phases, window);
  PhaseProfile kept;
  kept.reserve(profile.size());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (std::abs(phases[i] - med[i]) > threshold) {
      ++removed;
    } else {
      kept.push_back(profile[i]);
    }
  }
  profile = std::move(kept);
  return removed;
}

std::size_t reject_wrapped_impulses(std::vector<sim::PhaseSample>& samples,
                                    double threshold) {
  if (samples.size() < 3 || threshold <= 0.0) return 0;
  std::vector<sim::PhaseSample> kept;
  kept.reserve(samples.size());
  kept.push_back(samples[0]);
  std::size_t removed = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double jump =
        rf::circular_distance(samples[i].phase, kept.back().phase);
    if (jump <= threshold) {
      kept.push_back(samples[i]);
      continue;
    }
    // Look ahead: if the next sample agrees with this one, the *previous*
    // accepted sample was the wild one (e.g. a corrupted stream head) —
    // accept the current sample and move on.
    if (i + 1 < samples.size() &&
        rf::circular_distance(samples[i + 1].phase, samples[i].phase) <=
            threshold) {
      kept.push_back(samples[i]);
      continue;
    }
    ++removed;
  }
  samples = std::move(kept);
  return removed;
}

std::size_t reject_low_rssi(std::vector<sim::PhaseSample>& samples,
                            double below_median_db) {
  if (samples.empty() || below_median_db <= 0.0) return 0;
  std::vector<double> rssi(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    rssi[i] = samples[i].rssi_dbm;
  }
  std::nth_element(rssi.begin(),
                   rssi.begin() + static_cast<std::ptrdiff_t>(rssi.size() / 2),
                   rssi.end());
  const double cutoff = rssi[rssi.size() / 2] - below_median_db;
  std::vector<sim::PhaseSample> kept;
  kept.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.rssi_dbm >= cutoff) kept.push_back(s);
  }
  const std::size_t removed = samples.size() - kept.size();
  samples = std::move(kept);
  return removed;
}

}  // namespace lion::signal
