#include "signal/unwrap.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "rf/constants.hpp"
#include "rf/phase_model.hpp"

namespace lion::signal {

using rf::kPi;
using rf::kTwoPi;

// Unwrapping maps each raw jump into (-pi, pi] — any larger apparent jump
// is a wrap artifact of the modulo in Eq. (1), because consecutive reads of
// a tag moving at ~10 cm/s sampled at >=100 Hz can never move half a
// wavelength. A jump of exactly pi is genuinely ambiguous; the symmetric
// wrap resolves it as +pi, deterministically.

std::vector<double> unwrap(const std::vector<double>& wrapped) {
  LION_OBS_SPAN(obs::Stage::kUnwrap);
  std::vector<double> out;
  out.reserve(wrapped.size());
  double accumulated = 0.0;
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    if (i > 0) {
      const double raw_jump = wrapped[i] - wrapped[i - 1];
      // Fast path keeps in-range jumps bit-exact; only true wraps adjust.
      if (raw_jump > kPi || raw_jump <= -kPi) {
        accumulated += rf::wrap_phase_symmetric(raw_jump) - raw_jump;
      }
    }
    out.push_back(wrapped[i] + accumulated);
  }
  return out;
}

PhaseProfile unwrap_samples(const std::vector<sim::PhaseSample>& samples) {
  PhaseProfile profile = from_samples(samples);
  unwrap_in_place(profile);
  return profile;
}

void unwrap_in_place(PhaseProfile& profile) {
  LION_OBS_SPAN(obs::Stage::kUnwrap);
  double accumulated = 0.0;
  double prev_raw = 0.0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double raw = profile[i].phase;
    if (i > 0) {
      const double raw_jump = raw - prev_raw;
      if (raw_jump > kPi || raw_jump <= -kPi) {
        accumulated += rf::wrap_phase_symmetric(raw_jump) - raw_jump;
      }
    }
    prev_raw = raw;
    profile[i].phase = raw + accumulated;
  }
}

}  // namespace lion::signal
