// PhaseProfile: an ordered sequence of (position, unwrapped phase) points —
// the preprocessed input every localizer consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.hpp"
#include "sim/reader.hpp"

namespace lion::signal {

using linalg::Vec3;

/// One preprocessed point: known tag position and *unwrapped* phase.
struct ProfilePoint {
  Vec3 position{};
  double phase = 0.0;  ///< unwrapped (continuous) phase [rad]
  double t = 0.0;      ///< original timestamp [s]
};

/// An ordered phase profile along a scan.
using PhaseProfile = std::vector<ProfilePoint>;

/// Build a profile from raw reader samples without unwrapping (phases are
/// copied as-is). Mostly a conversion helper for tests.
PhaseProfile from_samples(const std::vector<sim::PhaseSample>& samples);

/// Linearly interpolate the profile's phase at an arbitrary position along
/// the scan's arc length. `arc` is distance travelled from the first point.
/// Throws std::invalid_argument on an empty profile.
double phase_at_arc(const PhaseProfile& profile, double arc);

/// Cumulative arc length of each profile point (same size as profile).
std::vector<double> arc_lengths(const PhaseProfile& profile);

/// Nearest profile point to a query position. Throws on empty profile.
const ProfilePoint& nearest_point(const PhaseProfile& profile,
                                  const Vec3& query);

/// Interpolated phase at the profile point nearest to `query`, refined by
/// linear interpolation between its two bracketing neighbours. Returns the
/// nearest point's phase at the profile ends. Throws on empty profile.
double phase_near(const PhaseProfile& profile, const Vec3& query);

}  // namespace lion::signal
