#include "signal/profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lion::signal {

PhaseProfile from_samples(const std::vector<sim::PhaseSample>& samples) {
  PhaseProfile p;
  p.reserve(samples.size());
  for (const auto& s : samples) {
    p.push_back({s.position, s.phase, s.t});
  }
  return p;
}

std::vector<double> arc_lengths(const PhaseProfile& profile) {
  std::vector<double> arcs(profile.size(), 0.0);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    arcs[i] = arcs[i - 1] + linalg::distance(profile[i - 1].position,
                                             profile[i].position);
  }
  return arcs;
}

double phase_at_arc(const PhaseProfile& profile, double arc) {
  if (profile.empty()) {
    throw std::invalid_argument("phase_at_arc: empty profile");
  }
  const auto arcs = arc_lengths(profile);
  if (arc <= arcs.front()) return profile.front().phase;
  if (arc >= arcs.back()) return profile.back().phase;
  const auto it = std::upper_bound(arcs.begin(), arcs.end(), arc);
  const auto hi = static_cast<std::size_t>(std::distance(arcs.begin(), it));
  const std::size_t lo = hi - 1;
  const double span = arcs[hi] - arcs[lo];
  const double u = span > 0.0 ? (arc - arcs[lo]) / span : 0.0;
  return profile[lo].phase + u * (profile[hi].phase - profile[lo].phase);
}

const ProfilePoint& nearest_point(const PhaseProfile& profile,
                                  const Vec3& query) {
  if (profile.empty()) {
    throw std::invalid_argument("nearest_point: empty profile");
  }
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double d = linalg::squared_distance(profile[i].position, query);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return profile[best];
}

double phase_near(const PhaseProfile& profile, const Vec3& query) {
  if (profile.empty()) {
    throw std::invalid_argument("phase_near: empty profile");
  }
  // Find the nearest point, then project the query onto the segment toward
  // whichever neighbour is closer, interpolating phase linearly.
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double d = linalg::squared_distance(profile[i].position, query);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  auto interp_on = [&](std::size_t a, std::size_t b) -> double {
    const Vec3 seg = profile[b].position - profile[a].position;
    const double len2 = seg.squared_norm();
    if (len2 == 0.0) return profile[a].phase;
    const double u = std::clamp(
        (query - profile[a].position).dot(seg) / len2, 0.0, 1.0);
    return profile[a].phase + u * (profile[b].phase - profile[a].phase);
  };
  if (profile.size() == 1) return profile[0].phase;
  if (best == 0) return interp_on(0, 1);
  if (best + 1 == profile.size()) return interp_on(best - 1, best);
  // Pick the neighbouring segment the query projects into more naturally.
  const double d_prev =
      linalg::squared_distance(profile[best - 1].position, query);
  const double d_next =
      linalg::squared_distance(profile[best + 1].position, query);
  return d_prev < d_next ? interp_on(best - 1, best) : interp_on(best, best + 1);
}

}  // namespace lion::signal
