// Phase unwrapping (Sec. IV-A1).
//
// Wrapped phases live in [0, 2*pi); while the tag moves, consecutive reads
// differ by far less than pi (displacement << half wavelength at >=100 Hz
// and ~10 cm/s), so any jump of at least pi must be a wrap: add/subtract
// multiples of 2*pi until consecutive differences fall below pi.
#pragma once

#include <vector>

#include "signal/profile.hpp"
#include "sim/reader.hpp"

namespace lion::signal {

/// Unwrap a raw wrapped phase sequence in place-order: the first value is
/// kept, subsequent values are shifted by multiples of 2*pi so every
/// consecutive jump is < pi in magnitude.
std::vector<double> unwrap(const std::vector<double>& wrapped);

/// Unwrap reader samples into a continuous PhaseProfile (positions and
/// timestamps are carried through).
PhaseProfile unwrap_samples(const std::vector<sim::PhaseSample>& samples);

/// Unwrap an existing profile's phases in place.
void unwrap_in_place(PhaseProfile& profile);

}  // namespace lion::signal
