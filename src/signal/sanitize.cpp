#include "signal/sanitize.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "rf/constants.hpp"
#include "rf/phase_model.hpp"

namespace lion::signal {

namespace {

bool finite_sample(const sim::PhaseSample& s) {
  return std::isfinite(s.t) && std::isfinite(s.phase) &&
         std::isfinite(s.rssi_dbm) && std::isfinite(s.position[0]) &&
         std::isfinite(s.position[1]) && std::isfinite(s.position[2]);
}

}  // namespace

std::vector<sim::PhaseSample> sanitize_samples(
    std::vector<sim::PhaseSample> samples, SanitizeReport* report) {
  LION_OBS_SPAN(obs::Stage::kSanitize);
  SanitizeReport local;
  SanitizeReport& r = report ? *report : local;
  r = SanitizeReport{};
  r.input = samples.size();

  // 1. Non-finite fields: unrecoverable, drop the read.
  auto keep_end = std::remove_if(
      samples.begin(), samples.end(),
      [](const sim::PhaseSample& s) { return !finite_sample(s); });
  r.dropped_nonfinite =
      static_cast<std::size_t>(std::distance(keep_end, samples.end()));
  samples.erase(keep_end, samples.end());

  // 2. Out-of-range wrapped phases: fold back. Wildly out-of-range values
  // become legal but wrong phases; the outlier stages downstream own those.
  for (auto& s : samples) {
    if (s.phase < 0.0 || s.phase >= rf::kTwoPi) {
      s.phase = rf::wrap_phase(s.phase);
      ++r.rewrapped;
    }
  }

  // 3. Chronological order: count violations, then stable-sort so equal
  // timestamps keep their delivery order.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].t < samples[i - 1].t) ++r.reordered;
  }
  if (r.reordered > 0) {
    std::stable_sort(samples.begin(), samples.end(),
                     [](const sim::PhaseSample& a, const sim::PhaseSample& b) {
                       return a.t < b.t;
                     });
  }

  // 4. Duplicate deliveries: same instant, same commanded position.
  auto dup_end = std::unique(
      samples.begin(), samples.end(),
      [](const sim::PhaseSample& a, const sim::PhaseSample& b) {
        return a.t == b.t && a.position[0] == b.position[0] &&
               a.position[1] == b.position[1] && a.position[2] == b.position[2];
      });
  r.dropped_duplicate =
      static_cast<std::size_t>(std::distance(dup_end, samples.end()));
  samples.erase(dup_end, samples.end());

  r.kept = samples.size();
  return samples;
}

}  // namespace lion::signal
