#include "obs/obs.hpp"

#include <array>

namespace lion::obs {

namespace {

constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

constexpr std::array<const char*, kStageCount> kStageNames = {
    "sanitize", "unwrap", "smooth",    "stitch", "preprocess", "radical",
    "ransac",   "irls",   "solve",     "calibrate", "offset",  "job",
    "ingest",   "emit",   "demux",     "queue_wait", "serve_solve",
    "reorder",  "journal_append",      "journal_sync",
};

const std::array<MetricId, kStageCount>& stage_histogram_ids() {
  static const std::array<MetricId, kStageCount> ids = [] {
    std::array<MetricId, kStageCount> out{};
    auto& reg = MetricsRegistry::instance();
    for (std::size_t i = 0; i < kStageCount; ++i) {
      out[i] = reg.try_histogram(
          std::string("stage.") + kStageNames[i] + ".seconds",
          duration_bounds());
    }
    return out;
  }();
  return ids;
}

}  // namespace

const char* stage_name(Stage s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kStageCount ? kStageNames[i] : "unknown";
}

MetricId stage_histogram(Stage s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kStageCount ? stage_histogram_ids()[i] : kInvalidMetric;
}

void register_pipeline_metrics() {
  auto& reg = MetricsRegistry::instance();
  (void)stage_histogram_ids();
  // Counters, one authoritative list so snapshots always carry the schema.
  for (const char* name :
       {"radical.rows", "ransac.iterations", "ransac.degenerate_subsets",
        "ransac.fallbacks", "ransac.consensus", "irls.nonconverged",
        "engine.jobs", "engine.steals", "engine.exceptions", "serve.lines",
        "serve.samples", "serve.requests", "serve.errors", "serve.evictions",
        "serve.backpressure_waits", "serve.rejected_busy", "serve.timeouts",
        "serve.oversized", "serve.ticks", "serve.tick_fallbacks"}) {
    (void)reg.try_counter(name);
  }
  (void)reg.try_histogram("ransac.inlier_fraction", fraction_bounds());
  (void)reg.try_histogram("irls.iterations", count_bounds());
  (void)reg.try_histogram("irls.weight_mass", fraction_bounds());
  (void)reg.try_histogram("serve.queue_depth", count_bounds());
}

void set_metrics_enabled(bool on) {
  if (on) register_pipeline_metrics();
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

StageSpan::StageSpan(Stage s) : stage_(s) {
  metrics_ = metrics_enabled();
  trace_ = tracing_enabled();
  if (metrics_ || trace_) start_ = trace_now_ns();
}

StageSpan::StageSpan(Stage s, std::uint64_t arg) : StageSpan(s) {
  arg_ = arg;
  has_arg_ = true;
}

StageSpan::~StageSpan() {
  if (!(metrics_ || trace_)) return;
  const std::uint64_t dur = trace_now_ns() - start_;
  if (metrics_) {
    MetricsRegistry::instance().record(stage_histogram(stage_),
                                       static_cast<double>(dur) * 1e-9);
  }
  if (trace_) {
    trace_record({stage_name(stage_), trace_thread_id(), start_, dur, arg_,
                  has_arg_});
  }
}

}  // namespace lion::obs
