#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace lion::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

// ---------------------------------------------------------------------------
// HistogramData
// ---------------------------------------------------------------------------

HistogramData::HistogramData(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("HistogramData: empty bounds");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "HistogramData: bounds must be strictly increasing");
    }
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

HistogramData HistogramData::from_parts(std::vector<double> bounds,
                                        std::vector<std::uint64_t> buckets,
                                        std::uint64_t count, double sum,
                                        double min, double max) {
  HistogramData h(std::move(bounds));
  if (buckets.size() != h.buckets_.size()) {
    throw std::invalid_argument("HistogramData::from_parts: bucket count");
  }
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

void HistogramData::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

bool HistogramData::merge(const HistogramData& other) {
  if (bounds_ != other.bounds_) return false;
  if (other.count_ == 0) return true;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

double HistogramData::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double HistogramData::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double n = static_cast<double>(buckets_[i]);
    if (n == 0.0) continue;
    if (cum + n >= target) {
      // Bucket edges, clamped to the exactly-tracked value envelope so a
      // sparse bucket can never report a value outside [min, max].
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi < lo) hi = lo;
      const double u = std::clamp((target - cum) / n, 0.0, 1.0);
      return lo + u * (hi - lo);
    }
    cum += n;
  }
  return max_;
}

std::vector<double> duration_bounds() {
  std::vector<double> bounds;
  for (double v = 1e-6; v < 80.0; v *= 1.3) bounds.push_back(v);
  return bounds;
}

std::vector<double> count_bounds() {
  std::vector<double> bounds;
  for (double v = 1.0; v <= 65536.0; v *= 2.0) bounds.push_back(v);
  return bounds;
}

std::vector<double> fraction_bounds() {
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) {
    bounds.push_back(static_cast<double>(i) / 20.0);
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

std::string Snapshot::to_json() const {
  std::string out = "{\"schema\":\"lion.metrics.v1\",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out.push_back(',');
    out.push_back('"');
    out += json_escape(counters[i].first);
    out += "\":";
    out += std::to_string(counters[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i) out.push_back(',');
    const auto& [name, h] = histograms[i];
    const double nan = std::numeric_limits<double>::quiet_NaN();
    out.push_back('"');
    out += json_escape(name);
    out += "\":{\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    append_json_number(out, h.sum());
    out += ",\"min\":";
    append_json_number(out, h.count() ? h.min() : nan);
    out += ",\"max\":";
    append_json_number(out, h.count() ? h.max() : nan);
    out += ",\"mean\":";
    append_json_number(out, h.count() ? h.mean() : nan);
    // Sparse bucket list: [upper_bound, count] pairs, zero buckets
    // omitted; the overflow bucket's upper bound serializes as null.
    out += ",\"buckets\":[";
    bool first = true;
    const auto& bounds = h.bounds();
    const auto& buckets = h.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('[');
      append_json_number(out, b < bounds.size() ? bounds[b] : nan);
      out.push_back(',');
      out += std::to_string(buckets[b]);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  struct Hist {
    std::array<std::atomic<std::uint64_t>, kMaxHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Hist, kMaxHistograms> hists{};
};

// Non-atomic mirror of a shard: the fold target for retired threads and
// the scratch accumulator of snapshot(). Namespace scope (not anonymous)
// to match the friend declaration in metrics.hpp.
struct Accumulator {
  std::array<std::uint64_t, kMaxCounters> counters{};
  struct Hist {
    std::array<std::uint64_t, kMaxHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  std::array<Hist, kMaxHistograms> hists{};

  void fold_shard(const MetricsRegistry::Shard& shard) {
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      counters[i] += shard.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      const auto& src = shard.hists[i];
      const std::uint64_t n = src.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      auto& dst = hists[i];
      for (std::size_t b = 0; b < kMaxHistogramBuckets; ++b) {
        dst.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
      }
      dst.count += n;
      dst.sum += src.sum.load(std::memory_order_relaxed);
      dst.min = std::min(dst.min, src.min.load(std::memory_order_relaxed));
      dst.max = std::max(dst.max, src.max.load(std::memory_order_relaxed));
    }
  }

  void fold(const Accumulator& other) {
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      counters[i] += other.counters[i];
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      const auto& src = other.hists[i];
      if (src.count == 0) continue;
      auto& dst = hists[i];
      for (std::size_t b = 0; b < kMaxHistogramBuckets; ++b) {
        dst.buckets[b] += src.buckets[b];
      }
      dst.count += src.count;
      dst.sum += src.sum;
      dst.min = std::min(dst.min, src.min);
      dst.max = std::max(dst.max, src.max);
    }
  }
};

namespace {

void atomic_fmin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

void atomic_fmax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

void atomic_fadd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::vector<std::string> counter_names;  // guarded by mutex
  std::vector<std::string> hist_names;     // guarded by mutex
  // Histogram bounds live in fixed slots so the lock-free record() path
  // can read them: each slot is written exactly once (under the mutex)
  // before its id is published, and published_hists gates readers.
  std::array<std::vector<double>, kMaxHistograms> hist_bounds;
  std::atomic<std::size_t> published_hists{0};
  std::vector<std::unique_ptr<Shard>> live;  // guarded by mutex
  Accumulator retired;                       // guarded by mutex
  // Liveness token for thread-exit retirement: the TLS cache holds a weak
  // reference, so a thread outliving a (test-local) registry skips the
  // fold instead of touching freed memory.
  std::shared_ptr<Impl*> self_guard;

  void retire_locked(Shard* shard) {
    std::lock_guard<std::mutex> lock(mutex);
    retired.fold_shard(*shard);
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->get() == shard) {
        live.erase(it);
        break;
      }
    }
  }
};

// Per-thread cache of (registry -> shard). The destructor retires every
// shard this thread created, folding its values into the owning registry
// so they survive the thread (pool workers die between runs).
struct TlsShardCache {
  struct Entry {
    MetricsRegistry::Impl* impl = nullptr;
    MetricsRegistry::Shard* shard = nullptr;
    std::weak_ptr<MetricsRegistry::Impl*> guard;
  };
  std::vector<Entry> entries;

  ~TlsShardCache() {
    for (auto& e : entries) {
      if (auto alive = e.guard.lock()) {
        e.impl->retire_locked(e.shard);
      }
    }
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {
  impl_->self_guard = std::make_shared<Impl*>(impl_.get());
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: worker threads may retire shards after static
  // destructors start running.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

MetricId MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (std::size_t i = 0; i < impl_->counter_names.size(); ++i) {
    if (impl_->counter_names[i] == name) return static_cast<MetricId>(i);
  }
  if (impl_->counter_names.size() >= kMaxCounters) {
    throw std::length_error("MetricsRegistry: counter capacity exhausted");
  }
  impl_->counter_names.push_back(name);
  return static_cast<MetricId>(impl_->counter_names.size() - 1);
}

MetricId MetricsRegistry::histogram(const std::string& name,
                                    std::vector<double> bounds) {
  if (bounds.size() + 1 > kMaxHistogramBuckets) {
    throw std::invalid_argument(
        "MetricsRegistry: histogram bounds exceed kMaxHistogramBuckets");
  }
  // Validate via the value type's constructor before taking a slot.
  HistogramData probe(bounds);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (std::size_t i = 0; i < impl_->hist_names.size(); ++i) {
    if (impl_->hist_names[i] == name) return static_cast<MetricId>(i);
  }
  const std::size_t slot = impl_->hist_names.size();
  if (slot >= kMaxHistograms) {
    throw std::length_error("MetricsRegistry: histogram capacity exhausted");
  }
  impl_->hist_names.push_back(name);
  impl_->hist_bounds[slot] = std::move(bounds);
  // Release-publish after the slot is fully written.
  impl_->published_hists.store(slot + 1, std::memory_order_release);
  return static_cast<MetricId>(slot);
}

MetricId MetricsRegistry::try_counter(const std::string& name) noexcept {
  try {
    return counter(name);
  } catch (...) {
    return kInvalidMetric;
  }
}

MetricId MetricsRegistry::try_histogram(const std::string& name,
                                        std::vector<double> bounds) noexcept {
  try {
    return histogram(name, std::move(bounds));
  } catch (...) {
    return kInvalidMetric;
  }
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local TlsShardCache cache;
  // Prune entries of destroyed registries while scanning: a dead
  // registry's Impl address can be reused by a new one, so a stale entry
  // must never satisfy the address match (its shard memory is gone).
  for (auto it = cache.entries.begin(); it != cache.entries.end();) {
    if (it->guard.expired()) {
      it = cache.entries.erase(it);
      continue;
    }
    if (it->impl == impl_.get()) return *it->shard;
    ++it;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->live.push_back(std::move(shard));
  }
  cache.entries.push_back({impl_.get(), raw, impl_->self_guard});
  return *raw;
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  if (id >= kMaxCounters) return;
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::record(MetricId id, double value) {
  if (id >= impl_->published_hists.load(std::memory_order_acquire)) return;
  const std::vector<double>& bounds = impl_->hist_bounds[id];
  auto& h = local_shard().hists[id];
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  h.buckets[static_cast<std::size_t>(it - bounds.begin())].fetch_add(
      1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  atomic_fadd(h.sum, value);
  atomic_fmin(h.min, value);
  atomic_fmax(h.max, value);
}

Snapshot MetricsRegistry::snapshot() const {
  Accumulator acc;
  std::vector<std::string> counter_names;
  std::vector<std::string> hist_names;
  std::vector<std::vector<double>> hist_bounds;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    acc.fold(impl_->retired);
    for (const auto& shard : impl_->live) acc.fold_shard(*shard);
    counter_names = impl_->counter_names;
    hist_names = impl_->hist_names;
    hist_bounds.assign(impl_->hist_bounds.begin(),
                       impl_->hist_bounds.begin() +
                           static_cast<std::ptrdiff_t>(hist_names.size()));
  }

  Snapshot snap;
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    snap.counters.emplace_back(counter_names[i], acc.counters[i]);
  }
  for (std::size_t i = 0; i < hist_names.size(); ++i) {
    const auto& bounds = hist_bounds[i];
    const auto& h = acc.hists[i];
    std::vector<std::uint64_t> buckets(
        h.buckets.begin(),
        h.buckets.begin() + static_cast<std::ptrdiff_t>(bounds.size() + 1));
    snap.histograms.emplace_back(
        hist_names[i],
        HistogramData::from_parts(bounds, std::move(buckets), h.count, h.sum,
                                  h.min, h.max));
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

std::string MetricsRegistry::snapshot_json() const {
  return snapshot().to_json();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->retired = Accumulator{};
  for (auto& shard : impl_->live) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
    }
  }
}

}  // namespace lion::obs
