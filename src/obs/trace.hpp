// Nested stage tracing with Chrome trace_event export.
//
// Every traced thread owns a fixed-capacity ring buffer of completed
// spans; recording locks only the thread's own (uncontended) ring mutex.
// Rings are owned by the process-wide trace store and deliberately outlive
// their threads — pool workers die between engine runs, and their spans
// must still appear in the export. When the ring wraps, the oldest spans
// are overwritten and counted as dropped.
//
// Export is the Chrome trace_event JSON format ("X" complete events):
// open chrome://tracing or https://ui.perfetto.dev and load the file.
// Nesting needs no explicit parent links — a span whose [ts, ts+dur]
// interval contains another's, on the same tid, renders as its parent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lion::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// Runtime enable flag for tracing (default: off); one relaxed load.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool on);

/// One completed span. `name` must point at a string with static storage
/// duration (stage names are string literals).
struct TraceEvent {
  const char* name = "";
  std::uint32_t tid = 0;       ///< small per-process thread ordinal
  std::uint64_t start_ns = 0;  ///< since the process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;  ///< e.g. batch job id
  bool has_arg = false;
};

/// Per-thread ring capacity for spans recorded after the call; default
/// 16384. Existing rings keep their size.
void set_trace_capacity(std::size_t events_per_thread);

/// Record a completed span into this thread's ring (spans call this).
void trace_record(const TraceEvent& event);

/// Merged view of every ring, sorted by (start, longest-first) so parents
/// precede their children.
std::vector<TraceEvent> trace_snapshot();

/// Spans overwritten by ring wrap-around since the last trace_reset().
std::uint64_t trace_dropped();

/// Chrome trace_event JSON document for the current snapshot.
std::string trace_json();

/// Drop every recorded span (rings stay allocated).
void trace_reset();

/// Nanoseconds since the process trace epoch (steady clock).
std::uint64_t trace_now_ns();

/// Small stable ordinal for the calling thread.
std::uint32_t trace_thread_id();

/// RAII span: records [construction, destruction) into the trace when
/// tracing is enabled at construction time. Two relaxed loads when off.
/// Prefer the LION_OBS_SPAN macros (obs/obs.hpp), which also time the
/// span into a metrics histogram.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, std::uint64_t arg);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ = 0;
  std::uint64_t arg_ = 0;
  bool active_ = false;
  bool has_arg_ = false;
};

}  // namespace lion::obs
