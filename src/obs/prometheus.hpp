// Prometheus text-exposition rendering (version 0.0.4, the plain-text
// format every scraper accepts).
//
// The registry's dotted metric names map to Prometheus conventions:
// "serve.lines" becomes "lion_serve_lines_total" (counter) and
// "stage.solve.seconds" becomes "lion_stage_solve_seconds" (histogram
// with cumulative `_bucket{le=...}` series, `_sum`, and `_count`).
// Rendering is deterministic for fixed recorded values — names are
// emitted in the registry snapshot's sorted order and numbers follow a
// fixed %.17g/%g convention — so conformance tests can compare scrapes
// structurally.
//
// The helpers below are also the building blocks for gauges the registry
// does not own (process RSS, journal lag, per-session RED series): the
// serve telemetry endpoint composes its body from them.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace lion::obs {

/// "serve.lines" -> "lion_serve_lines"; any character outside
/// [a-zA-Z0-9_] becomes '_', and a leading digit gains a '_' prefix.
std::string prometheus_name(const std::string& name);

/// Escape a label value (backslash, double quote, newline).
std::string prometheus_label_escape(const std::string& value);

/// Append `# TYPE` header + one sample line:
///   <name>{<labels>} <value>\n
/// `labels` is the raw inside of the braces ("" = no braces); `type` is
/// "counter" / "gauge" and may be empty to skip the header (continuation
/// samples of an already-typed family).
void append_prometheus_sample(std::string& out, const std::string& name,
                              const std::string& labels, double value,
                              const char* type);

/// Render a full registry snapshot: counters as `<name>_total` counter
/// families, histograms as cumulative-bucket histogram families. Every
/// name gains the "lion_" prefix.
std::string prometheus_render(const Snapshot& snapshot);

}  // namespace lion::obs
