#include "obs/events.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/json.hpp"

namespace lion::obs {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

std::string Event::to_json() const {
  std::string out = "{\"schema\":\"lion.evlog.v1\",\"seq\":";
  out += std::to_string(seq);
  out += ",\"t\":";
  append_json_number(out, wall_s);
  out += ",\"severity\":\"";
  out += severity_name(severity);
  out += "\",\"type\":\"";
  out += json_escape(type);
  out += "\",\"session\":\"";
  out += json_escape(session);
  out += "\",\"detail\":\"";
  out += json_escape(detail);
  out += "\",\"value\":";
  out += std::to_string(value);
  out.push_back('}');
  return out;
}

EventLog::EventLog(EventLogConfig config) : cfg_(std::move(config)) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.reserve(std::min<std::size_t>(cfg_.capacity, 4096));
}

EventLog::~EventLog() = default;

double EventLog::now() const {
  if (cfg_.clock) return cfg_.clock();
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void EventLog::set_sink(std::FILE* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
  sink_failed_ = false;
}

bool EventLog::emit(Severity severity, std::string type, std::string session,
                    std::string detail, std::uint64_t value) noexcept {
  try {
    std::lock_guard<std::mutex> lock(mu_);
    const double t = now();

    // Per-type token bucket. The type list is small and stable (a handful
    // of call sites), so a linear scan beats a map here.
    if (cfg_.rate_per_s > 0.0) {
      Bucket* bucket = nullptr;
      for (Bucket& b : buckets_) {
        if (b.type == type) {
          bucket = &b;
          break;
        }
      }
      if (bucket == nullptr) {
        buckets_.push_back({type, cfg_.burst, t});
        bucket = &buckets_.back();
      }
      const double elapsed = std::max(0.0, t - bucket->last_refill_s);
      bucket->tokens =
          std::min(cfg_.burst, bucket->tokens + elapsed * cfg_.rate_per_s);
      bucket->last_refill_s = t;
      if (bucket->tokens < 1.0) {
        ++rate_limited_;
        return false;
      }
      bucket->tokens -= 1.0;
    }

    Event ev;
    ev.seq = next_seq_++;
    ev.wall_s = t;
    ev.severity = severity;
    ev.type = std::move(type);
    ev.session = std::move(session);
    ev.detail = std::move(detail);
    ev.value = value;
    ++severity_counts_[static_cast<std::size_t>(severity)];

    if (sink_ != nullptr && !sink_failed_) {
      const std::string line = ev.to_json();
      if (std::fwrite(line.data(), 1, line.size(), sink_) != line.size() ||
          std::fputc('\n', sink_) == EOF) {
        sink_failed_ = true;  // latch: a full disk must not spam errno loops
      } else {
        std::fflush(sink_);
      }
    }

    if (ring_.size() < cfg_.capacity) {
      ring_.push_back(std::move(ev));
    } else {
      ring_[ring_head_] = std::move(ev);
      ring_head_ = (ring_head_ + 1) % cfg_.capacity;
      ++dropped_;
    }
    return true;
  } catch (...) {
    // Observation only: an allocation failure here must never unwind the
    // ingest thread.
    return false;
  }
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t EventLog::rate_limited() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_limited_;
}

std::array<std::uint64_t, 4> EventLog::severity_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return severity_counts_;
}

}  // namespace lion::obs
