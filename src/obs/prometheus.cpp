#include "obs/prometheus.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace lion::obs {

namespace {

// Prometheus sample values: plain decimal for integers (exact), %.17g for
// the rest. NaN/Inf are legal tokens in the exposition format but useless
// to alert on; we render them as +Inf/-Inf/NaN per the spec.
void append_value(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "lion_";
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_prometheus_sample(std::string& out, const std::string& name,
                              const std::string& labels, double value,
                              const char* type) {
  if (type != nullptr && type[0] != '\0') {
    out += "# TYPE ";
    out += name;
    out.push_back(' ');
    out += type;
    out.push_back('\n');
  }
  out += name;
  if (!labels.empty()) {
    out.push_back('{');
    out += labels;
    out.push_back('}');
  }
  out.push_back(' ');
  append_value(out, value);
  out.push_back('\n');
}

std::string prometheus_render(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    append_prometheus_sample(out, prometheus_name(name) + "_total", "",
                             static_cast<double>(value), "counter");
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string base = prometheus_name(name);
    out += "# TYPE ";
    out += base;
    out += " histogram\n";
    // Cumulative buckets: Prometheus `le` is inclusive, matching the
    // registry's "value <= bound" bucketing exactly.
    std::uint64_t cum = 0;
    const auto& bounds = hist.bounds();
    const auto& buckets = hist.buckets();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += buckets[i];
      std::string label = "le=\"";
      char buf[40];
      std::snprintf(buf, sizeof buf, "%g", bounds[i]);
      label += buf;
      label += "\"";
      append_prometheus_sample(out, base + "_bucket", label,
                               static_cast<double>(cum), "");
    }
    cum += buckets.empty() ? 0 : buckets.back();
    append_prometheus_sample(out, base + "_bucket", "le=\"+Inf\"",
                             static_cast<double>(cum), "");
    append_prometheus_sample(out, base + "_sum", "", hist.sum(), "");
    append_prometheus_sample(out, base + "_count", "",
                             static_cast<double>(hist.count()), "");
  }
  return out;
}

}  // namespace lion::obs
