// Structured JSON event log for the ops plane.
//
// An EventLog is the serving stack's "what just happened" channel: slow
// requests, residual-gate trips, journal degradation, drain progress —
// discrete noteworthy moments, as opposed to the metrics registry's
// aggregated counters. Each event is one flat JSON object
// (schema lion.evlog.v1) with a monotone sequence number, wall-clock
// timestamp, severity, type, optional session, and a free-form detail.
//
// Three properties make it safe to wire into a hot ingest path:
//   - bounded memory: retention is a fixed-capacity ring; old events are
//     overwritten and counted as dropped, never accumulated;
//   - bounded rate: a token bucket per event *type* caps sustained
//     emission (default 50/s with a burst of 100); excess events are
//     counted in `rate_limited`, not stored and not written;
//   - observation only: emitting an event never throws and never feeds
//     back into a solver, so the serve layer's byte-determinism contract
//     is untouched (the sink is a side channel, not the response stream).
//
// An optional line-oriented sink (an opened FILE, e.g. lion_served
// --event-log) receives each retained event as one JSON line; write
// failures latch the sink off rather than erroring the caller.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace lion::obs {

enum class Severity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

/// Stable lowercase name ("debug", "info", "warn", "error").
const char* severity_name(Severity s);

/// One retained event.
struct Event {
  std::uint64_t seq = 0;   ///< monotone per-log emission index
  double wall_s = 0.0;     ///< seconds since the Unix epoch
  Severity severity = Severity::kInfo;
  std::string type;        ///< machine key, e.g. "slow_request"
  std::string session;     ///< originating session id ("" = none)
  std::string detail;      ///< human-readable context
  std::uint64_t value = 0; ///< type-specific magnitude (ns, bytes, count)

  /// Deterministic single-line lion.evlog.v1 JSON.
  std::string to_json() const;
};

struct EventLogConfig {
  std::size_t capacity = 1024;      ///< ring retention (events)
  double rate_per_s = 50.0;         ///< sustained per-type emission cap
  double burst = 100.0;             ///< per-type token-bucket depth
  /// Wall clock in seconds since the Unix epoch; injectable so rate-limit
  /// tests run on a virtual clock. nullptr = std::chrono::system_clock.
  std::function<double()> clock;
};

/// Thread-safe bounded event log (see file comment for the contract).
class EventLog {
 public:
  EventLog() : EventLog(EventLogConfig{}) {}
  explicit EventLog(EventLogConfig config);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Attach a line sink; each retained event is appended as one JSON line
  /// and flushed. The log does NOT own the FILE. nullptr detaches.
  void set_sink(std::FILE* sink);

  /// Record an event. Returns false when the type's token bucket was dry
  /// (the event was counted as rate-limited and not retained). Never
  /// throws.
  bool emit(Severity severity, std::string type, std::string session,
            std::string detail, std::uint64_t value = 0) noexcept;

  /// Oldest-first copy of the retained ring.
  std::vector<Event> snapshot() const;

  std::uint64_t emitted() const;       ///< events accepted into the ring
  std::uint64_t dropped() const;       ///< ring-overwritten (retention)
  std::uint64_t rate_limited() const;  ///< rejected by the token bucket

  /// Counts by severity for the accepted events (index = Severity).
  std::array<std::uint64_t, 4> severity_counts() const;

 private:
  struct Bucket {
    std::string type;
    double tokens = 0.0;
    double last_refill_s = 0.0;
  };

  double now() const;

  EventLogConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;     ///< capacity-bounded, ring_head_ = oldest
  std::size_t ring_head_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::array<std::uint64_t, 4> severity_counts_{};
  std::vector<Bucket> buckets_;
  std::FILE* sink_ = nullptr;
  bool sink_failed_ = false;
};

}  // namespace lion::obs
