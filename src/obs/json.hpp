// Deterministic JSON primitives shared by every machine-readable emitter
// (metrics snapshots, Chrome traces, calibration reports, bench records).
//
// Conventions, fixed because downstream consumers byte-compare output:
//   - doubles print with %.17g (round-trip exact for IEEE binary64);
//   - non-finite doubles (NaN, +/-Inf) print as `null` — JSON has no NaN,
//     and an invalid token in one diagnostic field must never make a whole
//     snapshot unparseable;
//   - no locale dependence, no whitespace variation.
#pragma once

#include <string>

namespace lion::obs {

/// Append `v` to `out` as a JSON number token: %.17g, or `null` when `v`
/// is NaN or infinite.
void append_json_number(std::string& out, double v);

/// The same token as a fresh string.
std::string json_number(double v);

/// Escape a string for embedding between JSON double quotes (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace lion::obs
