#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace lion::obs {

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out.append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

std::string json_number(double v) {
  std::string out;
  append_json_number(out, v);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace lion::obs
