// Process-level gauges for the ops plane: resident set size and open file
// descriptors, read from /proc. These back the serve layer's `!healthz`
// snapshot and the soak harness's leak gates — both need cheap, allocation-
// light reads that degrade to 0 (rather than throwing) on platforms or
// sandboxes without /proc.
#pragma once

#include <cstdint>

namespace lion::obs {

/// Resident set size of this process in bytes (/proc/self/statm field 2
/// times the page size), or 0 when unavailable.
std::uint64_t process_rss_bytes();

/// Count of open file descriptors (/proc/self/fd entries), or 0 when
/// unavailable.
std::uint64_t process_open_fds();

/// Same gauges for another process (the soak driver watching a spawned
/// lion_served). 0 when the pid or /proc is unavailable.
std::uint64_t process_rss_bytes(int pid);
std::uint64_t process_open_fds(int pid);

}  // namespace lion::obs
