#include "obs/process.hpp"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace lion::obs {

namespace {

std::uint64_t rss_from_statm(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(rss_pages) *
         static_cast<std::uint64_t>(page);
}

std::uint64_t count_fds(const std::string& path) {
  ::DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return 0;
  std::uint64_t count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;  // ".", ".."
    ++count;
  }
  ::closedir(dir);
  // The opendir itself holds one fd while we count; don't report it.
  return count > 0 ? count - 1 : 0;
}

}  // namespace

std::uint64_t process_rss_bytes() { return rss_from_statm("/proc/self/statm"); }

std::uint64_t process_open_fds() { return count_fds("/proc/self/fd"); }

std::uint64_t process_rss_bytes(int pid) {
  return rss_from_statm("/proc/" + std::to_string(pid) + "/statm");
}

std::uint64_t process_open_fds(int pid) {
  return count_fds("/proc/" + std::to_string(pid) + "/fd");
}

}  // namespace lion::obs
