// Process-wide metrics: named counters and fixed-bucket histograms.
//
// Hot-path contract
// -----------------
// Recording is lock-free: every thread writes relaxed atomics in its own
// shard (no cache-line ping-pong between recording threads), and
// snapshot() merges the shards under the registration mutex. When metrics
// are disabled (the default), the instrumentation macros in obs/obs.hpp
// cost one relaxed atomic load and a predictable branch — strictly less
// than a relaxed increment — and with the LION_OBS_OFF compile-time kill
// switch they vanish entirely.
//
// Determinism
// -----------
// Metrics are measurements, never results: nothing in this module feeds
// back into a solver, so enabling instrumentation cannot change a
// calibration report (the engine determinism suite re-proves this with
// metrics on). snapshot_json() itself is deterministic for fixed recorded
// values: names sort lexicographically and numbers follow the %.17g
// conventions of obs/json.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lion::obs {

/// Registry capacity caps. Fixed at compile time so a thread shard is one
/// flat allocation with no growth races; registration past a cap throws.
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxHistograms = 64;
/// Per-histogram bucket cap for *registered* histograms (upper bounds + 1
/// overflow bucket). Standalone HistogramData values are unbounded.
inline constexpr std::size_t kMaxHistogramBuckets = 96;

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = 0xFFFFFFFFu;

/// Plain-value fixed-bucket histogram: the merge target of a snapshot and
/// a reusable aggregation type in its own right (the batch engine derives
/// its latency percentiles from one instead of sorting raw samples).
///
/// Buckets are defined by a strictly increasing vector of upper bounds;
/// bucket i counts values <= bounds[i] (first unmatched bound wins), and a
/// final overflow bucket counts values above the last bound. Sum, count,
/// min and max are tracked exactly regardless of bucket resolution.
class HistogramData {
 public:
  HistogramData() = default;
  /// Throws std::invalid_argument unless `bounds` is non-empty and
  /// strictly increasing.
  explicit HistogramData(std::vector<double> bounds);

  /// Reassemble a histogram from recorded parts (snapshot merge, tests).
  /// `buckets` must have bounds.size() + 1 entries.
  static HistogramData from_parts(std::vector<double> bounds,
                                  std::vector<std::uint64_t> buckets,
                                  std::uint64_t count, double sum, double min,
                                  double max);

  void record(double v);
  /// Fold another histogram with identical bounds into this one; returns
  /// false (and does nothing) on a bounds mismatch.
  bool merge(const HistogramData& other);

  /// Percentile estimate in [0, 100] by linear interpolation inside the
  /// owning bucket, clamped to the exactly-tracked [min, max] envelope.
  ///
  /// Small-sample behavior (documented and tested, n < 3):
  ///   - n == 0: returns 0.0 for every p;
  ///   - n == 1: every percentile equals the single recorded value (the
  ///     clamp collapses the bucket to min == max);
  ///   - n == 2: results interpolate within the clamped bucket(s) — p0
  ///     is the min, p100 the max, and interior percentiles lie strictly
  ///     inside [min, max] (the bucket midpoint when both samples share a
  ///     bucket). They are estimates, not order statistics.
  /// Accuracy for larger n is bounded by bucket width around the quantile.
  double percentile(double p) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact mean of recorded values; 0 when empty.
  double mean() const;
  /// Exact extremes; 0 when empty (check count() first).
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-spaced duration bounds in seconds, 1 us .. ~80 s (factor 1.3):
/// the shared resolution of every stage-timing histogram.
std::vector<double> duration_bounds();
/// Power-of-two bounds 1 .. 65536 for iteration/row counts.
std::vector<double> count_bounds();
/// Linear bounds 0.05 .. 1.0 for fractions (inlier ratio, weight mass).
std::vector<double> fraction_bounds();

/// A merged, point-in-time view of every registered metric.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// Deterministic single-line JSON (see obs/json.hpp conventions).
  std::string to_json() const;
};

/// The process-wide registry of counters and histograms.
///
/// Instances are also constructible directly (tests); the instrumentation
/// macros always target instance(). Threads that recorded into a
/// non-singleton registry must finish before it is destroyed.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (intentionally leaked: worker threads may
  /// retire shards during process teardown).
  static MetricsRegistry& instance();

  /// Register (or look up) a counter by name. Idempotent. Throws
  /// std::length_error past kMaxCounters.
  MetricId counter(const std::string& name);
  /// Register (or look up) a histogram by name. The bounds of an existing
  /// name are kept (first registration wins). Throws std::length_error
  /// past kMaxHistograms and std::invalid_argument on bad/oversized
  /// bounds.
  MetricId histogram(const std::string& name, std::vector<double> bounds);

  /// Checked registration: like counter()/histogram() but a full registry
  /// (or bad bounds) yields kInvalidMetric instead of throwing. Since
  /// add()/record() no-op on invalid ids, cap overflow degrades that one
  /// metric instead of killing the caller — the only acceptable failure
  /// mode for a long-lived daemon whose instrumentation macros register
  /// lazily. The instrumentation macros and every serve-path registration
  /// use these.
  MetricId try_counter(const std::string& name) noexcept;
  MetricId try_histogram(const std::string& name,
                         std::vector<double> bounds) noexcept;

  /// Hot path: relaxed add into this thread's shard. Invalid ids no-op.
  void add(MetricId id, std::uint64_t delta);
  /// Hot path: relaxed histogram record into this thread's shard.
  void record(MetricId id, double value);

  /// Merge every live and retired shard into one consistent-enough view
  /// (concurrent recorders may land in either side of the cut).
  Snapshot snapshot() const;
  std::string snapshot_json() const;

  /// Zero every recorded value; registrations are kept.
  void reset();

 private:
  struct Shard;
  struct Impl;

  Shard& local_shard();

  std::unique_ptr<Impl> impl_;

  friend struct TlsShardCache;
  friend struct Accumulator;
};

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Runtime enable flag for the whole metrics layer (default: off). The
/// macros in obs/obs.hpp check this before touching the registry; the
/// check is a single relaxed load.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Toggle metrics. Enabling also pre-registers the pipeline's standard
/// stage histograms and counters (see obs/obs.hpp) so a snapshot always
/// carries the full schema, zeros included.
void set_metrics_enabled(bool on);

}  // namespace lion::obs
