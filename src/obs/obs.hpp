// Umbrella header for the observability layer: pipeline stage taxonomy,
// combined metrics+trace spans, and the instrumentation macros used
// throughout signal/, linalg/, core/ and engine/.
//
// Overhead contract
// -----------------
//   - disabled at runtime (default): every macro costs at most one or two
//     relaxed atomic loads and predictable branches — strictly less than
//     a relaxed increment, verified by the bench_batch_engine before/after
//     gate (<2% throughput delta);
//   - compiled with -DLION_OBS_OFF: the macros expand to ((void)0) and
//     the instrumentation vanishes from the binary entirely;
//   - enabled: counters/histograms are lock-free per-thread-shard relaxed
//     atomics (obs/metrics.hpp); traces lock only the calling thread's
//     own ring (obs/trace.hpp).
//
// Instrumentation never feeds back into any solver, so enabling it cannot
// change a calibration result (re-proven by the engine determinism suite).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lion::obs {

/// The calibration pipeline's stages, in rough execution order. Each gets
/// a registry histogram "stage.<name>.seconds" and a trace span name.
enum class Stage : std::size_t {
  kSanitize,    ///< signal/sanitize: stream scrubbing
  kUnwrap,      ///< signal/unwrap: 2*pi-jump removal
  kSmooth,      ///< signal/smooth: moving-average smoothing
  kStitch,      ///< signal/stitch: cross-trajectory continuity
  kPreprocess,  ///< signal/stitch: the whole preprocess() pipeline
  kRadical,     ///< core/radical: radical-line row assembly
  kRansac,      ///< core/ransac: consensus sampling
  kIrls,        ///< linalg/lstsq: reweighting loop (any robust loss)
  kSolve,       ///< core/localizer: one full linear solve
  kCalibrate,   ///< core/calibration: calibrate_antenna_robust end to end
  kOffset,      ///< core/calibration: Eq.-17 phase-offset extraction
  kJob,         ///< engine/batch: one batch job (trace arg = job id)
  kIngest,      ///< serve/service: one wire line through parse + demux
  kEmit,        ///< serve/service: ordered-emitter release of one response
  // Serve-side request tracing (trace arg = trace id): the stations one
  // flush visits between the ingest thread and the ordered emitter.
  kDemux,          ///< serve/service: session lookup + admission
  kQueueWait,      ///< serve/service: schedule() to worker pickup
  kServeSolve,     ///< serve/service: worker-side calibration solve
  kReorder,        ///< serve/service: emitter hold for in-order release
  kJournalAppend,  ///< serve/journal: one record append
  kJournalSync,    ///< serve/journal: fsync batch
  kCount
};

/// Stable short name ("unwrap", "ransac", ...). Static storage.
const char* stage_name(Stage s);

/// Registry id of the stage's duration histogram (registered on first
/// use, bounds = duration_bounds()).
MetricId stage_histogram(Stage s);

/// Pre-register the full pipeline schema — every stage histogram plus the
/// standard counters and distribution histograms (ransac.*, irls.*,
/// radical.rows, engine.*) — so snapshots always contain them, zeros
/// included. Called automatically by set_metrics_enabled(true).
void register_pipeline_metrics();

/// RAII combined span: on destruction, records its duration into the
/// stage's metrics histogram (when metrics are enabled) and appends a
/// trace slice (when tracing is enabled). Both flags are sampled at
/// construction; when both are off the span does nothing.
class StageSpan {
 public:
  explicit StageSpan(Stage s);
  StageSpan(Stage s, std::uint64_t arg);
  ~StageSpan();
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Stage stage_;
  std::uint64_t start_ = 0;
  std::uint64_t arg_ = 0;
  bool metrics_ = false;
  bool trace_ = false;
  bool has_arg_ = false;
};

}  // namespace lion::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. LION_OBS_OFF is the compile-time kill switch.
// ---------------------------------------------------------------------------

#if defined(LION_OBS_OFF)

#define LION_OBS_SPAN(stage) ((void)0)
#define LION_OBS_SPAN_TAGGED(stage, tag) ((void)0)
#define LION_OBS_COUNT(name, delta) ((void)0)
#define LION_OBS_HIST(name, bounds_expr, value) ((void)0)

#else

#define LION_OBS_CONCAT_IMPL(a, b) a##b
#define LION_OBS_CONCAT(a, b) LION_OBS_CONCAT_IMPL(a, b)

/// Time the enclosing scope as a pipeline stage.
#define LION_OBS_SPAN(stage)                               \
  const ::lion::obs::StageSpan LION_OBS_CONCAT(            \
      lion_obs_span_, __LINE__) {                          \
    (stage)                                                \
  }

/// Same, with a numeric tag carried into the trace (e.g. a job id).
#define LION_OBS_SPAN_TAGGED(stage, tag)                   \
  const ::lion::obs::StageSpan LION_OBS_CONCAT(            \
      lion_obs_span_, __LINE__) {                          \
    (stage), static_cast<std::uint64_t>(tag)               \
  }

/// Bump a named counter. The id resolves once (thread-safe static) on the
/// first enabled pass through this line; a full registry degrades this
/// one site to a no-op (try_counter) instead of throwing on a hot path.
#define LION_OBS_COUNT(name, delta)                                   \
  do {                                                                \
    if (::lion::obs::metrics_enabled()) {                             \
      static const ::lion::obs::MetricId lion_obs_cid =               \
          ::lion::obs::MetricsRegistry::instance().try_counter(name); \
      ::lion::obs::MetricsRegistry::instance().add(                   \
          lion_obs_cid, static_cast<std::uint64_t>(delta));           \
    }                                                                 \
  } while (0)

/// Record a value into a named histogram with the given bounds
/// (bounds_expr is evaluated only on the first enabled pass). Like
/// LION_OBS_COUNT, registry exhaustion degrades the site to a no-op.
#define LION_OBS_HIST(name, bounds_expr, value)                      \
  do {                                                               \
    if (::lion::obs::metrics_enabled()) {                            \
      static const ::lion::obs::MetricId lion_obs_hid =              \
          ::lion::obs::MetricsRegistry::instance().try_histogram(    \
              name, (bounds_expr));                                  \
      ::lion::obs::MetricsRegistry::instance().record(               \
          lion_obs_hid, static_cast<double>(value));                 \
    }                                                                \
  } while (0)

#endif  // LION_OBS_OFF
