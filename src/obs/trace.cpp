#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/json.hpp"

namespace lion::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

struct Ring {
  std::mutex mutex;
  std::vector<TraceEvent> buf;  // sized once, on first record
  std::size_t next = 0;
  bool wrapped = false;
  std::uint64_t dropped = 0;
};

struct TraceStore {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;  // never shrinks: outlives threads
  std::atomic<std::size_t> capacity{16384};
  std::atomic<std::uint32_t> next_tid{0};

  static TraceStore& instance() {
    static auto* store = new TraceStore();  // leaked, see MetricsRegistry
    return *store;
  }

  Ring& local_ring() {
    thread_local Ring* ring = [this] {
      auto owned = std::make_unique<Ring>();
      Ring* raw = owned.get();
      std::lock_guard<std::mutex> lock(mutex);
      rings.push_back(std::move(owned));
      return raw;
    }();
    return *ring;
  }
};

}  // namespace

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t events_per_thread) {
  TraceStore::instance().capacity.store(
      std::max<std::size_t>(1, events_per_thread), std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

std::uint32_t trace_thread_id() {
  thread_local const std::uint32_t tid =
      TraceStore::instance().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void trace_record(const TraceEvent& event) {
  auto& store = TraceStore::instance();
  Ring& ring = store.local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.buf.empty()) {
    ring.buf.resize(store.capacity.load(std::memory_order_relaxed));
  }
  if (ring.wrapped) ++ring.dropped;
  ring.buf[ring.next] = event;
  ring.next = (ring.next + 1) % ring.buf.size();
  if (ring.next == 0 && !ring.wrapped) ring.wrapped = true;
}

std::vector<TraceEvent> trace_snapshot() {
  auto& store = TraceStore::instance();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(store.mutex);
    for (const auto& ring : store.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      const std::size_t n =
          ring->wrapped ? ring->buf.size() : ring->next;
      for (std::size_t i = 0; i < n; ++i) out.push_back(ring->buf[i]);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;  // parents before children at equal start
  });
  return out;
}

std::uint64_t trace_dropped() {
  auto& store = TraceStore::instance();
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(store.mutex);
  for (const auto& ring : store.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

std::string trace_json() {
  const auto events = trace_snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (i) out.push_back(',');
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"lion\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_json_number(out, static_cast<double>(e.start_ns) / 1000.0);
    out += ",\"dur\":";
    append_json_number(out, static_cast<double>(e.dur_ns) / 1000.0);
    if (e.has_arg) {
      out += ",\"args\":{\"job\":";
      out += std::to_string(e.arg);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void trace_reset() {
  auto& store = TraceStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (const auto& ring : store.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->wrapped = false;
    ring->dropped = 0;
  }
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (tracing_enabled()) {
    start_ = trace_now_ns();
    active_ = true;
  }
}

TraceSpan::TraceSpan(const char* name, std::uint64_t arg) : TraceSpan(name) {
  arg_ = arg;
  has_arg_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  trace_record({name_, trace_thread_id(), start_, trace_now_ns() - start_,
                arg_, has_arg_});
}

}  // namespace lion::obs
