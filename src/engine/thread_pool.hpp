// Fixed-size work-stealing thread pool — the execution substrate of the
// batch calibration engine.
//
// Design constraints, in order:
//  1. *Determinism of the work itself*: the pool never reorders a task's
//     side effects relative to another task's — tasks must be independent,
//     and the engine guarantees that by giving each job its own output
//     slot and its own RNG seed. The pool only decides *where/when* a task
//     runs, never *what* it computes.
//  2. *No deadlocks on teardown*: the destructor drains nothing — it stops
//     accepting work, wakes every worker, and joins. wait_idle() is the
//     explicit barrier for callers that need completion.
//  3. *Work stealing*: submissions are distributed round-robin across
//     per-worker deques; an idle worker first drains its own deque
//     (LIFO, cache-friendly) and then steals from its siblings' opposite
//     end (FIFO, contention-friendly).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lion::engine {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawn `threads` workers (clamped to at least 1). Throws
  /// std::invalid_argument on 0 only when `allow_inline` is false; the
  /// engine passes explicit counts, so 0 is a caller bug.
  explicit ThreadPool(std::size_t threads);

  /// Stops accepting work, wakes all workers, joins. Tasks already
  /// submitted but not yet started are abandoned (the engine always
  /// wait_idle()s before destruction, so this only matters on exception
  /// paths).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe; may be called from worker threads
  /// (nested submission), though the engine does not need it. Tasks must
  /// not throw — a throwing task is caught, counted, and dropped so one
  /// bad job can never take the pool down.
  void submit(Task task);

  /// Block until every submitted task has finished running.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// Tasks that ran on a worker other than the one they were assigned to
  /// (diagnostic; proves stealing actually happens under imbalance).
  std::size_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Tasks whose invocation threw (caught and swallowed by the pool).
  std::size_t exception_count() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  // One mutex-guarded deque per worker. A lock-free Chase-Lev deque would
  // shave nanoseconds that calibration jobs (~10^7 ns each) cannot feel;
  // the mutexed deque is trivially correct under ASan/TSan.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_take(std::size_t self, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;   ///< workers sleep here when starved
  std::condition_variable idle_cv_;   ///< wait_idle() sleeps here

  std::atomic<std::size_t> pending_{0};  ///< submitted but not finished
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> task_exceptions_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace lion::engine
