#include "engine/batch.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "engine/thread_pool.hpp"
#include "linalg/small.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"

namespace lion::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::uint64_t job_seed(std::uint64_t id) {
  // splitmix64: adjacent job ids map to decorrelated seeds, so job 0 and
  // job 1 never sample overlapping consensus subsets.
  std::uint64_t z = id + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

CalibrationJob make_calibration_job(std::uint64_t id,
                                    std::vector<sim::PhaseSample> samples,
                                    const Vec3& physical_center,
                                    core::RobustCalibrationConfig config) {
  CalibrationJob job;
  job.id = id;
  job.samples = std::move(samples);
  job.physical_center = physical_center;
  job.config = std::move(config);
  job.config.adaptive.base.ransac.seed = job_seed(id);
  return job;
}

std::size_t BatchResult::succeeded() const {
  std::size_t n = 0;
  for (const auto& r : results) {
    if (r.report.ok()) ++n;
  }
  return n;
}

BatchEngine::BatchEngine(BatchEngineOptions options) {
  threads_ = options.threads;
  if (threads_ == 0) {
    threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

BatchResult BatchEngine::run(const std::vector<CalibrationJob>& jobs) const {
  BatchResult out;
  out.results.resize(jobs.size());
  out.stats.jobs = jobs.size();
  out.stats.threads = threads_;
  if (jobs.empty()) return out;

  const auto batch_start = Clock::now();
  {
    ThreadPool pool(threads_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Each task touches only jobs[i] (const) and results[i] (its own
      // slot) — the no-shared-mutable-state leg of the determinism
      // contract.
      pool.submit([&jobs, &out, i, batch_start] {
        const CalibrationJob& job = jobs[i];
        JobResult& slot = out.results[i];
        slot.id = job.id;
        LION_OBS_SPAN_TAGGED(obs::Stage::kJob, job.id);
        // One solver workspace per pool thread: after the first job warms
        // it, the per-job RANSAC/IRLS core stops allocating. Safe because
        // a task runs on exactly one worker and never shares the
        // workspace (results are workspace-independent anyway).
        thread_local linalg::SolverWorkspace solver_ws;
        try {
          slot.report = job.work
                            ? job.work(job)
                            : core::calibrate_antenna_robust(
                                  job.samples, job.physical_center, job.config,
                                  &solver_ws);
        } catch (const std::exception& e) {
          slot.threw = true;
          slot.error = e.what();
          slot.report = core::CalibrationReport{};
          slot.report.status = core::CalibrationStatus::kSolverFailure;
          slot.report.diagnostics.message =
              std::string("job raised: ") + e.what();
        } catch (...) {
          slot.threw = true;
          slot.error = "unknown exception";
          slot.report = core::CalibrationReport{};
          slot.report.status = core::CalibrationStatus::kSolverFailure;
          slot.report.diagnostics.message = "job raised: unknown exception";
        }
        slot.latency_s = seconds_between(batch_start, Clock::now());
      });
    }
    pool.wait_idle();
    out.stats.steals = pool.steal_count();
  }
  out.stats.wall_s = seconds_between(batch_start, Clock::now());
  out.stats.throughput_jps =
      out.stats.wall_s > 0.0 ? jobs.size() / out.stats.wall_s : 0.0;

  out.stats.latency = obs::HistogramData(obs::duration_bounds());
  for (const auto& r : out.results) {
    out.stats.latency.record(r.latency_s);
    const auto idx = static_cast<std::size_t>(r.report.status);
    if (idx < out.stats.status_histogram.size()) {
      ++out.stats.status_histogram[idx];
    }
    if (r.threw) ++out.stats.exceptions;
  }
  out.stats.latency_mean_s = out.stats.latency.mean();
  out.stats.latency_p50_s = out.stats.latency.percentile(50.0);
  out.stats.latency_p95_s = out.stats.latency.percentile(95.0);
  out.stats.latency_p99_s = out.stats.latency.percentile(99.0);

  LION_OBS_COUNT("engine.jobs", jobs.size());
  LION_OBS_COUNT("engine.steals", out.stats.steals);
  LION_OBS_COUNT("engine.exceptions", out.stats.exceptions);
  return out;
}

std::vector<CalibrationJob> make_simulated_batch(
    const SimulatedBatchSpec& spec) {
  std::vector<CalibrationJob> jobs;
  jobs.reserve(spec.jobs);
  for (std::size_t i = 0; i < spec.jobs; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    const Vec3 physical{0.0, spec.antenna_depth, 0.0};
    // Each job gets its own antenna unit (own displacement/offset quirks)
    // and its own sim seed, both derived from the job id — two batches
    // with the same spec are sample-for-sample identical.
    auto scenario =
        sim::Scenario::Builder{}
            .environment(spec.environment)
            .add_antenna(rf::make_antenna(
                physical, static_cast<std::uint32_t>(id & 0xFFFFFFFFULL)))
            .add_tag()
            .seed(spec.base_seed ^ job_seed(id))
            .build();
    sim::ThreeLineRig rig;
    rig.x_min = -spec.rig_half_span;
    rig.x_max = spec.rig_half_span;
    auto samples = scenario.sweep(0, 0, rig.build());
    jobs.push_back(make_calibration_job(id, std::move(samples), physical,
                                        spec.config));
  }
  return jobs;
}

}  // namespace lion::engine
