// Batch calibration engine: run many independent antenna calibrations on a
// work-stealing thread pool, with per-job reports and aggregate statistics.
//
// Multi-antenna deployments (Sec. V-G's three-antenna rig, and fleets far
// beyond it) calibrate every antenna against the same rig sweep cadence;
// each calibration is embarrassingly parallel — stream in, report out, no
// shared state. The engine expresses exactly that workload shape.
//
// Determinism contract
// --------------------
// run() is *bitwise deterministic*: for a fixed job vector, the returned
// reports are byte-identical whether the engine uses 1 thread or N. This
// holds because
//   1. every job carries its own config — including the consensus-sampling
//     RNG seed, derived from the job id by make_calibration_job() — so no
//     job draws from a shared random stream;
//   2. each job writes only its own pre-allocated result slot;
//   3. results are returned in job order, not completion order.
// Timing fields (latency, BatchStats) are measurements, not results, and
// are excluded from the contract.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "obs/metrics.hpp"
#include "sim/environment.hpp"
#include "sim/reader.hpp"

namespace lion::engine {

using linalg::Vec3;

/// One unit of work: a raw tag stream swept past one antenna, the believed
/// physical center, and the solver configuration to calibrate it with.
struct CalibrationJob {
  std::uint64_t id = 0;  ///< caller-chosen identity; seeds the job's RNG
  std::vector<sim::PhaseSample> samples;  ///< raw reader stream
  Vec3 physical_center{};                 ///< ruler-measured antenna center
  core::RobustCalibrationConfig config{};

  /// Optional override of the work itself (tests, custom pipelines). When
  /// set, the engine invokes it instead of calibrate_antenna_robust; a
  /// throw is mapped to a kSolverFailure report, never a crash.
  std::function<core::CalibrationReport(const CalibrationJob&)> work;
};

/// Derive a decorrelated per-job RNG seed from the job id (splitmix64).
std::uint64_t job_seed(std::uint64_t id);

/// Build a job with the determinism contract applied: the consensus
/// solver's sampling seed is derived from `id`, so two jobs with different
/// ids never share a random stream.
CalibrationJob make_calibration_job(
    std::uint64_t id, std::vector<sim::PhaseSample> samples,
    const Vec3& physical_center,
    core::RobustCalibrationConfig config = {});

/// Per-job outcome, in job order.
struct JobResult {
  std::uint64_t id = 0;
  core::CalibrationReport report;
  double latency_s = 0.0;  ///< queue-to-finish wall time (not deterministic)
  bool threw = false;      ///< job raised; report.status is kSolverFailure
  std::string error;       ///< exception message when threw
};

/// Number of CalibrationStatus values (histogram extent).
inline constexpr std::size_t kStatusCount = 5;

/// Aggregate statistics over one run() call.
struct BatchStats {
  std::size_t jobs = 0;
  std::size_t threads = 0;
  double wall_s = 0.0;            ///< submit of first to finish of last
  double throughput_jps = 0.0;    ///< jobs / wall_s
  double latency_mean_s = 0.0;
  /// Latency percentiles, estimated from `latency` (see below). For tiny
  /// batches the obs::HistogramData small-sample semantics apply: with one
  /// job every percentile is that job's latency; with two jobs p50 is an
  /// interpolated estimate between them, not an order statistic.
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  /// Full queue-to-finish latency distribution (obs duration buckets);
  /// exact count/sum/min/max, bucket-resolution percentiles.
  obs::HistogramData latency;
  /// Count per CalibrationStatus, indexed by the enum's value.
  std::array<std::size_t, kStatusCount> status_histogram{};
  std::size_t exceptions = 0;     ///< jobs whose work threw
  std::size_t steals = 0;         ///< pool-level task migrations
};

/// Everything run() produces.
struct BatchResult {
  std::vector<JobResult> results;  ///< one per job, in job order
  BatchStats stats;

  /// Jobs that produced a usable estimate (ok or degraded).
  std::size_t succeeded() const;
};

/// Engine options.
struct BatchEngineOptions {
  /// Worker threads; 0 means hardware_concurrency (at least 1).
  std::size_t threads = 0;
};

/// The batch engine. Construction is cheap; each run() spins up its own
/// pool so a long-lived engine holds no idle threads.
class BatchEngine {
 public:
  explicit BatchEngine(BatchEngineOptions options = {});

  /// Execute every job; never throws on job failure (see JobResult::threw).
  BatchResult run(const std::vector<CalibrationJob>& jobs) const;

  /// The thread count run() will use.
  std::size_t threads() const { return threads_; }

 private:
  std::size_t threads_ = 1;
};

// ---------------------------------------------------------------------------
// Simulated batches: the workload generator used by the CLI and benches.
// ---------------------------------------------------------------------------

/// Spec for a fleet of simulated single-antenna calibration jobs.
struct SimulatedBatchSpec {
  std::size_t jobs = 16;
  sim::EnvironmentKind environment = sim::EnvironmentKind::kLabTypical;
  std::uint64_t base_seed = 1;  ///< mixed with each job id for the sim RNG
  double antenna_depth = 0.8;   ///< believed physical center at (0, depth, 0)
  /// Scan half-span of the three-line rig along x [m]; smaller spans make
  /// cheaper jobs (tests) at the cost of conditioning.
  double rig_half_span = 0.55;
  core::RobustCalibrationConfig config{};
};

/// Build `spec.jobs` jobs, each with its own simulated antenna unit (fresh
/// phase-center displacement and hardware offset), its own rig sweep, and
/// a per-job-id RNG seed. Deterministic in (spec, job id).
std::vector<CalibrationJob> make_simulated_batch(
    const SimulatedBatchSpec& spec);

}  // namespace lion::engine
