#include "engine/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace lion::engine {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: thread count must be >= 1");
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(Task task) {
  const std::size_t home =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[home]->mutex);
    queues_[home]->tasks.push_back(std::move(task));
  }
  // pending_ must be bumped before the wake so wait_idle() can never see
  // pending_ == 0 while a task sits queued.
  pending_.fetch_add(1, std::memory_order_release);
  // Serialize with the workers' sleep transition: a worker checks the
  // queues and blocks while holding wake_mutex_, so taking (and dropping)
  // the lock here guarantees the push above is visible to any worker that
  // has not yet committed to waiting — no lost wakeup.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_one();
}

bool ThreadPool::try_take(std::size_t self, Task& out) {
  // Own queue first, newest-first: the task most likely still hot in
  // whatever cache the submitter shared with us.
  {
    auto& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal from siblings, oldest-first, starting at the neighbour so that
  // concurrent thieves fan out instead of convoying on one victim.
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    auto& q = *queues_[(self + step) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    if (try_take(self, task)) {
      try {
        task();
      } catch (...) {
        task_exceptions_.fetch_add(1, std::memory_order_relaxed);
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task in flight: wake wait_idle() callers. Lock so the
        // notify cannot race between their pending_ check and their wait.
        std::lock_guard<std::mutex> lock(wake_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_.load(std::memory_order_relaxed)) return;
    // Re-check under the lock: a submit() may have landed between the
    // failed try_take and acquiring the lock.
    wake_cv_.wait(lock, [this, self] {
      if (stop_.load(std::memory_order_relaxed)) return true;
      for (const auto& q : queues_) {
        std::lock_guard<std::mutex> ql(q->mutex);
        if (!q->tasks.empty()) return true;
      }
      (void)self;
      return false;
    });
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace lion::engine
